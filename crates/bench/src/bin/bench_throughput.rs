//! Serving-loop throughput: scheduling rounds per second of wall time,
//! measured through the telemetry span timers.
//!
//! Serves both paper traffic mixes (datacenter Poisson and the
//! XRBench-style AR/VR frame mix) on Het-Sides with the SCAR policy —
//! one cold pass and one warm (cached) pass each — and reports, per mix:
//!
//! * **schedules/s** — scheduling rounds completed per second of
//!   `serve.run` wall time (the telemetry root span; both passes summed),
//! * **arrivals/s** — offered requests processed per second of the same
//!   wall time,
//! * the cold/warm split of the full-search vs cache-hit round counts
//!   (from the deterministic report counters).
//!
//! Results land in `BENCH_throughput.json`. The acceptance gate asserts
//! every mix clears a schedules/s floor — deliberately loose so CI
//! machines of very different speeds all pass, tightenable via
//! `SCAR_MIN_SCHEDULES_PER_SEC`:
//!
//! ```sh
//! cargo run --release -p scar-bench --bin bench_throughput
//! SCAR_MIN_SCHEDULES_PER_SEC=50 cargo run --release -p scar-bench --bin bench_throughput
//! ```
//!
//! The virtual-time serving *reports* are deterministic; the throughput
//! numbers are wall-clock and vary run to run (which is why they live in
//! a `BENCH_*.json`, never in a byte-compared `REPORT_*`).

use scar_mcm::templates::{het_sides_3x3, Profile};
use scar_serve::{ServeConfig, ServeSim, TrafficMix};
use scar_telemetry::Telemetry;
use std::fmt::Write as _;

/// The default schedules/s floor. A single-core CI box measures ~3.3k/s
/// on the slowest mix (datacenter Poisson, cold pass included); 200/s is
/// a 16× margin below that — tight enough to catch real collapses (the
/// schedule cache, the splice fast path, or batched evaluation silently
/// disabled all cost an order of magnitude), loose enough for machines
/// of very different speeds.
const DEFAULT_FLOOR: f64 = 200.0;

fn main() {
    let horizon_s = 2.0;
    let floor: f64 = match std::env::var("SCAR_MIN_SCHEDULES_PER_SEC") {
        Ok(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("SCAR_MIN_SCHEDULES_PER_SEC={v:?} is not a rate");
            std::process::exit(2);
        }),
        Err(_) => DEFAULT_FLOOR,
    };

    let mut entries = String::new();
    let mut failures = Vec::new();
    for (i, (profile, mix)) in [
        (Profile::Datacenter, TrafficMix::datacenter(0x5CA2)),
        (Profile::ArVr, TrafficMix::arvr(0x5CA2)),
    ]
    .into_iter()
    .enumerate()
    {
        let mcm = het_sides_3x3(profile);
        // metrics-only sink: span wall timers without the trace buffer
        let telemetry = Telemetry::enabled(false, true);
        let cfg = ServeConfig {
            telemetry: telemetry.clone(),
            ..ServeConfig::default()
        };
        let mut sim = ServeSim::new(&mcm, cfg);
        let cold = sim.run(&mix, horizon_s).expect("mix fits the 3x3");
        let warm = sim.run(&mix, horizon_s).expect("identical mix still fits");

        let run_wall = telemetry
            .span_wall("serve.run")
            .expect("the sim records its root span");
        let rounds = (cold.windows_scheduled + warm.windows_scheduled) as f64;
        let offered = (cold.offered + warm.offered) as f64;
        let schedules_per_sec = rounds / run_wall.total_s;
        let arrivals_per_sec = offered / run_wall.total_s;
        println!(
            "{}: {rounds} rounds / {offered} arrivals in {:.1} ms wall → \
             {schedules_per_sec:.1} schedules/s, {arrivals_per_sec:.1} arrivals/s \
             (cold: {} full searches; warm: {} cache hits)",
            mix.name,
            run_wall.total_s * 1e3,
            cold.full_searches,
            warm.cache.hits,
        );
        if schedules_per_sec < floor {
            failures.push(format!(
                "{}: {schedules_per_sec:.2} schedules/s below the {floor} floor",
                mix.name
            ));
        }
        write!(
            entries,
            "{}    \"{}\": {{\n      \"windows_scheduled\": {rounds},\n      \
             \"offered\": {offered},\n      \"serve_wall_s\": {:.6},\n      \
             \"schedules_per_sec\": {schedules_per_sec:.2},\n      \
             \"arrivals_per_sec\": {arrivals_per_sec:.2},\n      \
             \"cold_full_searches\": {},\n      \"warm_cache_hits\": {}\n    }}",
            if i == 0 { "" } else { ",\n" },
            mix.name,
            run_wall.total_s,
            cold.full_searches,
            warm.cache.hits,
        )
        .expect("string write");
    }

    let json = format!(
        "{{\n  \"horizon_s\": {horizon_s},\n  \"floor_schedules_per_sec\": {floor},\n  \
         \"results\": {{\n{entries}\n  }}\n}}\n"
    );
    std::fs::write("BENCH_throughput.json", json).expect("write BENCH_throughput.json");
    println!("wrote BENCH_throughput.json");

    assert!(
        failures.is_empty(),
        "scheduling throughput below floor:\n{}",
        failures.join("\n")
    );
    println!("acceptance: every mix clears {floor} schedules/s: ok");
}
