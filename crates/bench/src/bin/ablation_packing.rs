//! §V-E ablation — greedy vs uniform layer packing: Scenario 4 on
//! Het-Sides under the EDP search.
//!
//! The paper reports 21.8% speedup and 8.6% energy reduction for the
//! first-fit greedy packing (Algorithm 1) over uniform distribution.

use scar_bench::strategy::default_budget;
use scar_bench::table::Table;
use scar_core::{OptMetric, PackingRule, Scar, ScheduleRequest, Scheduler, Session};
use scar_mcm::templates::{het_sides_3x3, Profile};
use scar_workloads::Scenario;

fn main() {
    let sc = Scenario::datacenter(4);
    let mcm = het_sides_3x3(Profile::Datacenter);
    let budget = default_budget();
    let session = Session::new();
    let request = ScheduleRequest::new(sc.clone(), mcm.clone())
        .metric(OptMetric::Edp)
        .budget(budget.clone());
    println!("== Ablation: packing rule (Sc4, Het-Sides, EDP search) ==\n");
    let mut results = Vec::new();
    for (name, rule) in [
        ("Greedy (Alg. 1)", PackingRule::Greedy),
        ("Uniform", PackingRule::Uniform),
    ] {
        let r = Scar::builder()
            .packing(rule)
            .build()
            .schedule(&session, &request)
            .expect("feasible");
        results.push((name, r.total()));
    }
    let mut t = Table::new(vec![
        "Packing".into(),
        "Latency (s)".into(),
        "Energy (J)".into(),
        "EDP (J*s)".into(),
    ]);
    for (name, tot) in &results {
        t.row(vec![
            (*name).into(),
            format!("{:.4}", tot.latency_s),
            format!("{:.4}", tot.energy_j),
            format!("{:.4}", tot.edp()),
        ]);
    }
    println!("{t}");
    let (g, u) = (&results[0].1, &results[1].1);
    println!(
        "greedy vs uniform: {:.1}% speedup, {:.1}% energy change",
        (u.latency_s / g.latency_s - 1.0) * 100.0,
        (1.0 - g.energy_j / u.energy_j) * 100.0
    );
    println!("paper shape: greedy packing is faster and slightly more energy-efficient (paper: 21.8% / 8.6%).");
}
