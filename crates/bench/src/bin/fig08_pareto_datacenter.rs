//! Figure 8 — Pareto fronts of the candidate clouds for datacenter
//! scenarios 3 and 4 under each search target.

use scar_bench::pareto::{ascii_scatter, pareto_front};
use scar_bench::strategy::{quick_budget, Strategy};
use scar_core::{CandidatePoint, OptMetric, Session};
use scar_mcm::templates::Profile;
use scar_workloads::Scenario;

fn main() {
    let budget = quick_budget();
    let session = Session::new();
    let strategies = [
        Strategy::SimbaShi,
        Strategy::SimbaNvd,
        Strategy::HetCb,
        Strategy::HetSides,
    ];
    for scn in [3usize, 4] {
        let sc = Scenario::datacenter(scn);
        for metric in [OptMetric::Latency, OptMetric::Energy, OptMetric::Edp] {
            println!("== Figure 8: {} — {} search ==", sc.name(), metric.label());
            let mut clouds: Vec<(String, Vec<CandidatePoint>)> = Vec::new();
            for s in &strategies {
                if let Ok(r) = s.run(
                    &session,
                    &sc,
                    Profile::Datacenter,
                    metric.clone(),
                    4,
                    &budget,
                ) {
                    clouds.push((s.name().to_string(), r.candidates().to_vec()));
                }
            }
            let series: Vec<(&str, &[CandidatePoint])> = clouds
                .iter()
                .map(|(n, pts)| (n.as_str(), pts.as_slice()))
                .collect();
            println!("{}", ascii_scatter(&series, 72, 16));
            for (name, pts) in &clouds {
                let front = pareto_front(pts);
                println!("{name}: {} candidates, Pareto front:", pts.len());
                for p in front.iter().take(8) {
                    println!(
                        "    lat={:.4}s energy={:.4}J edp={:.4}",
                        p.latency_s,
                        p.energy_j,
                        p.edp()
                    );
                }
            }
            println!();
        }
    }
    println!("paper shape: heterogeneous clouds extend the front toward low latency on Sc4; NVD dominates the low-energy corner on Sc3.");
}
