//! Fleet serving at scale: one traffic mix sharded across N MCM replicas
//! under every built-in dispatch policy, with and without a priced
//! inter-MCM fabric.
//!
//! The paper schedules one MCM; a deployment runs many behind a router.
//! This benchmark drives the XRBench-style AR/VR frame mix — over a
//! horizon long enough for **≥1M arrivals** — through a heterogeneous
//! 4-replica fleet (the four 3×3 strategies of
//! [`scar_mcm::templates::all_3x3`]) under each [`DispatchKind`], and
//! reports the global deadline-miss rate, aggregate and per-replica
//! schedule-cache hit rates, per-replica utilization, rebalance
//! (migration) counts, and — when a fabric is attached — the inter-MCM
//! migration bytes/backlog/energy rollup. Results land in
//! `BENCH_fleet.json`, one result block per fabric variant (the default
//! sweep runs `none`, then `nop`-priced).
//!
//! Every policy runs twice — candidate evaluation `Serial`, then
//! `Fixed(4)` — and the two [`FleetReport`]s are asserted byte-identical
//! (struct equality *and* rendered form): the fleet's dispatch-then-merge
//! loop keeps the whole report parallelism-invariant, fabric or not. The
//! smaller of the two walls is reported (least-interference estimate).
//!
//! Acceptance gates (always on):
//!
//! * conservation per policy: `offered == completed + rejected` and
//!   `offered == Σ routed` across replicas;
//! * identical offered traffic under every policy and fabric variant;
//! * cache-affinity's aggregate schedule-cache hit rate is **strictly
//!   higher** than round-robin's in every full-sweep variant, and in the
//!   unpriced (`none`) variant its *miss* ratio is at most **half** of
//!   round-robin's — a relative gate, robust to horizon and mix tweaks
//!   where absolute hit counts are not.
//!
//! ```sh
//! cargo run --release -p scar-bench --bin bench_fleet
//! ```
//!
//! Environment knobs:
//!
//! * `SCAR_FLEET_SIZE` — replica count (default 4).
//! * `SCAR_FLEET_HET` — `0` makes the fleet homogeneous (all Het-Sides);
//!   default `1` cycles the four 3×3 strategies.
//! * `SCAR_DISPATCH` — run a single policy (`rr`, `least`, `deadline`,
//!   `affinity[:lag_s][:rehome_every]`) instead of the full sweep; the
//!   affinity-vs-RR gates only apply to the full sweep.
//! * `SCAR_FABRIC` — `none`, `nop`, or `wireless`: run that single
//!   fabric variant instead of the default `none` + `nop` sweep.
//! * `SCAR_REHOME` — cache-affinity re-homing epoch in routed arrivals
//!   (default 0 = static homes; applies to every variant's affinity run).
//! * `SCAR_FLEET_HORIZON_S` — override the traffic horizon (the ≥1M
//!   arrival floor is only asserted at the default horizon).
//! * `SCAR_FLEET_BASELINE` — path to a committed `BENCH_fleet.json`; the
//!   freshly written file must match it byte-for-byte once `wall_ms`
//!   lines are stripped from both (the CI drift gate).
//! * `SCAR_PERF_GATE` — additionally assert each policy's wall stays
//!   under [`WALL_CEILING_S`].
//! * `SCAR_TRACE` — record the span timeline (fleet.run → fleet.dispatch /
//!   fleet.migrate / fleet.replica → per-round serving spans) and write it
//!   to `TRACE_bench_fleet.json`. Trace runs drop to the `Serial` pass
//!   only so the timeline holds one run per policy.

use scar_core::Parallelism;
use scar_mcm::templates::Profile;
use scar_mcm::InterconnectSpec;
use scar_serve::{
    DispatchKind, FleetConfig, FleetReport, FleetSim, ReplicaSpec, ServeConfig, TrafficMix,
    TrafficShape,
};
use scar_telemetry::Telemetry;

/// Default horizon: 135 req/s of AR/VR frame traffic × 7500 s ≈ 1.01M
/// arrivals — past the 1M-arrival acceptance floor.
const DEFAULT_HORIZON_S: f64 = 7500.0;

/// Opt-in wall ceiling per policy (both parallelism passes together),
/// generous against CI jitter: the committed run finishes the full sweep
/// well under a quarter of this.
const WALL_CEILING_S: f64 = 300.0;

fn env_usize(name: &str, default: usize) -> usize {
    match std::env::var(name) {
        Err(_) => default,
        Ok(v) if v.trim().is_empty() => default,
        Ok(v) => v.trim().parse().unwrap_or_else(|_| {
            eprintln!("{name}={v:?} is not a count");
            std::process::exit(2);
        }),
    }
}

fn env_flag(name: &str, default: bool) -> bool {
    match std::env::var(name).as_deref() {
        Err(_) => default,
        Ok("0") | Ok("") => false,
        Ok(_) => true,
    }
}

/// Fabric label used in headings and the JSON artifact.
fn fabric_label(fabric: &Option<InterconnectSpec>) -> &'static str {
    match fabric {
        None => "none",
        Some(spec) => spec.label(),
    }
}

/// One policy's measurement under one fabric variant: the
/// (parallelism-invariant) report and the best-of-passes wall.
struct PolicyRun {
    kind: DispatchKind,
    report: FleetReport,
    wall: std::time::Duration,
}

fn policy_json(p: &PolicyRun, fabric: &Option<InterconnectSpec>) -> String {
    let r = &p.report;
    let replicas = r
        .replicas
        .iter()
        .enumerate()
        .map(|(i, rep)| {
            format!(
                "          {{ \"mcm\": \"{}\", \"routed\": {}, \"completed\": {}, \
                 \"utilization\": {:.4}, \"cache_hit_rate\": {:.4} }}",
                rep.mcm_name,
                rep.routed,
                rep.report.completed,
                r.utilization(i),
                rep.report.cache.hit_rate(),
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    // fabric columns are uniform across variants: zeros when unpriced,
    // so the artifact's schema never depends on the knob settings
    let (fab_migrations, fab_bytes, fab_cost_s, fab_energy_j) = match &r.fabric {
        Some(f) => (f.migrations, f.bytes, f.cost_s, f.energy_j),
        None => (0, 0, 0.0, 0.0),
    };
    format!(
        "      \"{}\": {{\n        \"fabric\": \"{}\",\n        \"completed\": {},\n        \
         \"rejected\": {},\n        \"deadline_miss_rate\": {:.6},\n        \
         \"cache_hit_rate\": {:.6},\n        \"migrations\": {},\n        \
         \"rehomed\": {},\n        \"fabric_migrations\": {fab_migrations},\n        \
         \"fabric_bytes\": {fab_bytes},\n        \"fabric_cost_s\": {fab_cost_s:.6},\n        \
         \"fabric_energy_j\": {fab_energy_j:.6},\n        \"makespan_s\": {:.3},\n        \
         \"wall_ms\": {:.1},\n        \"replicas\": [\n{replicas}\n        ]\n      }}",
        r.dispatch,
        fabric_label(fabric),
        r.completed,
        r.rejected,
        r.deadline_miss_rate(),
        r.cache_hit_rate(),
        r.migrations,
        r.rehomed,
        r.makespan_s,
        p.wall.as_secs_f64() * 1e3,
    )
}

fn main() {
    let fleet_size = env_usize("SCAR_FLEET_SIZE", 4).max(1);
    let heterogeneous = env_flag("SCAR_FLEET_HET", true);
    let rehome_every = env_usize("SCAR_REHOME", 0);
    let (horizon_s, default_horizon) = match std::env::var("SCAR_FLEET_HORIZON_S") {
        Err(_) => (DEFAULT_HORIZON_S, true),
        Ok(v) => match v.trim().parse::<f64>() {
            Ok(h) if h > 0.0 && h.is_finite() => (h, false),
            _ => {
                eprintln!("SCAR_FLEET_HORIZON_S={v:?} is not a positive horizon in seconds");
                std::process::exit(2);
            }
        },
    };
    let kinds: Vec<DispatchKind> = match std::env::var("SCAR_DISPATCH") {
        Err(_) => DispatchKind::builtins(),
        Ok(spec) => vec![DispatchKind::parse(&spec).unwrap_or_else(|e| {
            eprintln!("SCAR_DISPATCH: {e}");
            std::process::exit(2);
        })],
    }
    .into_iter()
    .map(|kind| match kind {
        // SCAR_REHOME upgrades affinity's default (static) homes; an
        // explicit `affinity:lag:epoch` spec already carries its own
        DispatchKind::CacheAffinity {
            max_lag_s,
            rehome_every: 0,
        } => DispatchKind::CacheAffinity {
            max_lag_s,
            rehome_every,
        },
        other => other,
    })
    .collect();
    let full_sweep = kinds.len() == DispatchKind::builtins().len();
    let fabrics: Vec<Option<InterconnectSpec>> = match std::env::var("SCAR_FABRIC") {
        Err(_) => vec![None, Some(InterconnectSpec::nop())],
        Ok(spec) => vec![InterconnectSpec::parse(&spec).unwrap_or_else(|e| {
            eprintln!("SCAR_FABRIC: {e}");
            std::process::exit(2);
        })],
    };

    let telemetry = Telemetry::from_env();
    // burst-reshaped AR/VR traffic (same mean rates, Markov-modulated
    // on/off arrivals, per-frame deadlines kept): queue shapes vary round
    // to round, so schedule-cache warmth is earned, not saturated — the
    // regime where routing policy actually moves the hit rate
    let mix = TrafficMix::arvr(0xF1EE7).reshaped(TrafficShape::Burst);
    let make_replicas = |parallelism: Parallelism, fabric: &Option<InterconnectSpec>| {
        let base = ServeConfig {
            parallelism,
            ..ServeConfig::default()
        };
        let specs = if heterogeneous {
            ReplicaSpec::heterogeneous(fleet_size, Profile::ArVr, base)
        } else {
            ReplicaSpec::homogeneous(fleet_size, Profile::ArVr, base)
        };
        specs
            .into_iter()
            .map(|mut r| {
                r.mcm = r.mcm.with_interconnect(*fabric);
                r
            })
            .collect::<Vec<_>>()
    };
    let replica_names: Vec<String> = make_replicas(Parallelism::Serial, &None)
        .iter()
        .map(|r| r.mcm.name().to_string())
        .collect();
    println!(
        "fleet: {fleet_size} replicas [{}] | mix {} ({:.0} req/s offered, {horizon_s} s horizon) | fabrics [{}]",
        replica_names.join(", "),
        mix.name,
        mix.offered_rps(),
        fabrics.iter().map(fabric_label).collect::<Vec<_>>().join(", "),
    );

    let run_policy = |kind: &DispatchKind, fabric: &Option<InterconnectSpec>| {
        let run_at = |parallelism: Parallelism| {
            let mut fleet = FleetSim::new(
                make_replicas(parallelism, fabric),
                FleetConfig {
                    dispatch: kind.clone(),
                    telemetry: telemetry.clone(),
                    ..FleetConfig::default()
                },
            );
            let t0 = std::time::Instant::now();
            let report = fleet.run(&mix, horizon_s).expect("mix fits each replica");
            (report, t0.elapsed())
        };
        let (serial_report, serial_wall) = run_at(Parallelism::Serial);
        let (report, wall) = if telemetry.trace_enabled() {
            (serial_report, serial_wall)
        } else {
            let (fixed_report, fixed_wall) = run_at(Parallelism::Fixed(4));
            assert_eq!(
                serial_report, fixed_report,
                "fleet determinism: Serial and Fixed(4) reports must be byte-identical"
            );
            assert_eq!(
                serial_report.to_string(),
                fixed_report.to_string(),
                "fleet determinism: rendered reports must match byte-for-byte"
            );
            (serial_report, serial_wall.min(fixed_wall))
        };
        PolicyRun {
            kind: kind.clone(),
            report,
            wall,
        }
    };

    // variant sweeps: (fabric, per-policy runs)
    let mut sweeps: Vec<(Option<InterconnectSpec>, Vec<PolicyRun>)> = Vec::new();
    for fabric in &fabrics {
        let mut runs = Vec::with_capacity(kinds.len());
        for kind in &kinds {
            let run = run_policy(kind, fabric);
            println!(
                "\n── dispatch: {} | fabric: {}\n{}",
                kind.name(),
                fabric_label(fabric),
                run.report
            );
            println!("wall {:.1?} (best of the parallelism passes)", run.wall);
            runs.push(run);
        }
        sweeps.push((*fabric, runs));
    }
    let offered = sweeps[0].1[0].report.offered;

    // conservation + scale gates, across every variant
    for (fabric, runs) in &sweeps {
        let label = fabric_label(fabric);
        for run in runs {
            let r = &run.report;
            assert_eq!(
                r.offered,
                r.completed + r.rejected,
                "{label}/{}: fleet conservation",
                r.dispatch
            );
            assert_eq!(
                r.offered,
                r.replicas.iter().map(|rep| rep.routed).sum::<usize>(),
                "{label}/{}: every arrival routed exactly once",
                r.dispatch
            );
            assert_eq!(
                r.offered, offered,
                "identical traffic under every policy and fabric"
            );
            if let Some(fab) = &r.fabric {
                let per_replica: u64 = r.replicas.iter().map(|rep| rep.migrated_in).sum();
                assert_eq!(
                    fab.migrations, per_replica,
                    "{label}/{}: fabric rollup conserves",
                    r.dispatch
                );
            }
        }
    }
    if default_horizon {
        assert!(
            offered >= 1_000_000,
            "scale floor: the default horizon must offer ≥1M arrivals (got {offered})"
        );
    }
    println!(
        "\nacceptance: conservation holds across {} polic{} × {} fabric{} at {offered} arrivals: ok",
        kinds.len(),
        if kinds.len() == 1 { "y" } else { "ies" },
        sweeps.len(),
        if sweeps.len() == 1 { "" } else { "s" },
    );

    // the headline comparison: sticky routing keeps per-replica caches
    // warm. Relative gates only — absolute hit counts drift with every
    // horizon or mix tweak, ratios don't.
    if full_sweep {
        for (fabric, runs) in &sweeps {
            let label = fabric_label(fabric);
            let rate = |name: &str| {
                runs.iter()
                    .find(|r| r.report.dispatch == name)
                    .map(|r| r.report.cache_hit_rate())
                    .expect("full sweep includes it")
            };
            let (rr, affinity) = (rate("round-robin"), rate("cache-affinity"));
            assert!(
                affinity > rr,
                "[{label}] cache-affinity hit rate {affinity:.4} must strictly beat round-robin {rr:.4}"
            );
            println!(
                "acceptance [{label}]: cache-affinity hit rate {:.2}% > round-robin {:.2}%: ok",
                affinity * 100.0,
                rr * 100.0
            );
            if fabric.is_none() {
                // the unpriced variant is the historical baseline regime;
                // there, affinity must leave at most half of RR's misses
                let (rr_miss, aff_miss) = (1.0 - rr, 1.0 - affinity);
                assert!(
                    aff_miss <= 0.5 * rr_miss,
                    "[{label}] cache-affinity miss ratio {aff_miss:.6} must be ≤ half of \
                     round-robin's {rr_miss:.6}"
                );
                println!(
                    "acceptance [{label}]: affinity miss ratio {:.4} ≤ 0.5 × round-robin {:.4}: ok",
                    aff_miss, rr_miss
                );
            }
        }
    }
    if env_flag("SCAR_PERF_GATE", false) {
        for (fabric, runs) in &sweeps {
            for run in runs {
                assert!(
                    run.wall.as_secs_f64() <= WALL_CEILING_S,
                    "perf gate: [{}] {} wall {:.1} s exceeds the {WALL_CEILING_S} s ceiling",
                    fabric_label(fabric),
                    run.report.dispatch,
                    run.wall.as_secs_f64()
                );
            }
        }
        println!("perf gate: every policy under the {WALL_CEILING_S} s wall ceiling: ok");
    }

    let results = sweeps
        .iter()
        .map(|(fabric, runs)| {
            format!(
                "    \"{}\": {{\n{}\n    }}",
                fabric_label(fabric),
                runs.iter()
                    .map(|r| policy_json(r, fabric))
                    .collect::<Vec<_>>()
                    .join(",\n"),
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"mix\": \"{}\",\n  \"horizon_s\": {horizon_s},\n  \"offered\": {offered},\n  \
         \"fleet_size\": {fleet_size},\n  \"heterogeneous\": {heterogeneous},\n  \
         \"replicas\": [{}],\n  \"fabrics\": [{}],\n  \"results\": {{\n{results}\n  }}\n}}\n",
        mix.name,
        replica_names
            .iter()
            .map(|n| format!("\"{n}\""))
            .collect::<Vec<_>>()
            .join(", "),
        fabrics
            .iter()
            .map(|f| format!("\"{}\"", fabric_label(f)))
            .collect::<Vec<_>>()
            .join(", "),
    );
    std::fs::write("BENCH_fleet.json", &json).expect("write BENCH_fleet.json");
    println!("wrote BENCH_fleet.json");

    if let Ok(baseline) = std::env::var("SCAR_FLEET_BASELINE") {
        // wall-clock lines are machine noise; everything else must match
        let strip = |s: &str| {
            s.lines()
                .filter(|l| !l.contains("\"wall_ms\""))
                .collect::<Vec<_>>()
                .join("\n")
        };
        let want = std::fs::read_to_string(&baseline)
            .unwrap_or_else(|e| panic!("SCAR_FLEET_BASELINE {baseline}: {e}"));
        assert_eq!(
            strip(&json),
            strip(&want),
            "BENCH_fleet.json drifted from the committed baseline {baseline}"
        );
        println!("acceptance: BENCH_fleet.json matches {baseline} (wall_ms stripped): ok");
    }

    // detail artifact: the rendered per-replica tables, gitignored
    let detail = sweeps
        .iter()
        .flat_map(|(fabric, runs)| {
            runs.iter().map(move |r| {
                format!(
                    "# {:?} | fabric {}\n{}",
                    r.kind,
                    fabric_label(fabric),
                    r.report
                )
            })
        })
        .collect::<Vec<_>>()
        .join("\n");
    std::fs::write("ARTIFACT_fleet_reports.txt", detail).expect("write ARTIFACT_fleet_reports.txt");
    println!("wrote ARTIFACT_fleet_reports.txt");

    if let Some(summary) = telemetry.wall_summary() {
        println!("{summary}");
    }
    if telemetry
        .write_trace("TRACE_bench_fleet.json")
        .expect("write TRACE_bench_fleet.json")
    {
        println!("wrote TRACE_bench_fleet.json (Chrome trace_event; load in Perfetto)");
    }
}
