//! Fleet serving at scale: one traffic mix sharded across N MCM replicas
//! under every built-in dispatch policy.
//!
//! The paper schedules one MCM; a deployment runs many behind a router.
//! This benchmark drives the XRBench-style AR/VR frame mix — over a
//! horizon long enough for **≥1M arrivals** — through a heterogeneous
//! 4-replica fleet (the four 3×3 strategies of
//! [`scar_mcm::templates::all_3x3`]) under each [`DispatchKind`], and
//! reports the global deadline-miss rate, aggregate and per-replica
//! schedule-cache hit rates, per-replica utilization, and rebalance
//! (migration) counts. Results land in `BENCH_fleet.json`.
//!
//! Every policy runs twice — candidate evaluation `Serial`, then
//! `Fixed(4)` — and the two [`FleetReport`]s are asserted byte-identical
//! (struct equality *and* rendered form): the fleet's dispatch-then-merge
//! loop keeps the whole report parallelism-invariant. The smaller of the
//! two walls is reported (least-interference estimate).
//!
//! Acceptance gates (always on):
//!
//! * conservation per policy: `offered == completed + rejected` and
//!   `offered == Σ routed` across replicas;
//! * identical offered traffic under every policy;
//! * cache-affinity's aggregate schedule-cache hit rate is **strictly
//!   higher** than round-robin's (sticky routing keeps each replica's
//!   schedule cache and cost database warm for its resident streams).
//!
//! ```sh
//! cargo run --release -p scar-bench --bin bench_fleet
//! ```
//!
//! Environment knobs:
//!
//! * `SCAR_FLEET_SIZE` — replica count (default 4).
//! * `SCAR_FLEET_HET` — `0` makes the fleet homogeneous (all Het-Sides);
//!   default `1` cycles the four 3×3 strategies.
//! * `SCAR_DISPATCH` — run a single policy (`rr`, `least`, `deadline`,
//!   `affinity[:lag_s]`) instead of the full sweep; the affinity-vs-RR
//!   gate only applies to the full sweep.
//! * `SCAR_FLEET_HORIZON_S` — override the traffic horizon (the ≥1M
//!   arrival floor is only asserted at the default horizon).
//! * `SCAR_PERF_GATE` — additionally assert each policy's wall stays
//!   under [`WALL_CEILING_S`].
//! * `SCAR_TRACE` — record the span timeline (fleet.run → fleet.dispatch /
//!   fleet.replica → per-round serving spans) and write it to
//!   `TRACE_bench_fleet.json`. Trace runs drop to the `Serial` pass only
//!   so the timeline holds one run per policy.

use scar_core::Parallelism;
use scar_mcm::templates::Profile;
use scar_serve::{
    DispatchKind, FleetConfig, FleetReport, FleetSim, ReplicaSpec, ServeConfig, TrafficMix,
    TrafficShape,
};
use scar_telemetry::Telemetry;

/// Default horizon: 135 req/s of AR/VR frame traffic × 7500 s ≈ 1.01M
/// arrivals — past the 1M-arrival acceptance floor.
const DEFAULT_HORIZON_S: f64 = 7500.0;

/// Opt-in wall ceiling per policy (both parallelism passes together),
/// generous against CI jitter: the committed run finishes the full sweep
/// well under a quarter of this.
const WALL_CEILING_S: f64 = 300.0;

fn env_usize(name: &str, default: usize) -> usize {
    match std::env::var(name) {
        Err(_) => default,
        Ok(v) if v.trim().is_empty() => default,
        Ok(v) => v.trim().parse().unwrap_or_else(|_| {
            eprintln!("{name}={v:?} is not a count");
            std::process::exit(2);
        }),
    }
}

fn env_flag(name: &str, default: bool) -> bool {
    match std::env::var(name).as_deref() {
        Err(_) => default,
        Ok("0") | Ok("") => false,
        Ok(_) => true,
    }
}

/// One policy's measurement: the (parallelism-invariant) report and the
/// best-of-passes wall.
struct PolicyRun {
    kind: DispatchKind,
    report: FleetReport,
    wall: std::time::Duration,
}

fn policy_json(p: &PolicyRun) -> String {
    let r = &p.report;
    let replicas = r
        .replicas
        .iter()
        .enumerate()
        .map(|(i, rep)| {
            format!(
                "        {{ \"mcm\": \"{}\", \"routed\": {}, \"completed\": {}, \
                 \"utilization\": {:.4}, \"cache_hit_rate\": {:.4} }}",
                rep.mcm_name,
                rep.routed,
                rep.report.completed,
                r.utilization(i),
                rep.report.cache.hit_rate(),
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    format!(
        "    \"{}\": {{\n      \"completed\": {},\n      \"rejected\": {},\n      \
         \"deadline_miss_rate\": {:.6},\n      \"cache_hit_rate\": {:.6},\n      \
         \"migrations\": {},\n      \"makespan_s\": {:.3},\n      \"wall_ms\": {:.1},\n      \
         \"replicas\": [\n{replicas}\n      ]\n    }}",
        r.dispatch,
        r.completed,
        r.rejected,
        r.deadline_miss_rate(),
        r.cache_hit_rate(),
        r.migrations,
        r.makespan_s,
        p.wall.as_secs_f64() * 1e3,
    )
}

fn main() {
    let fleet_size = env_usize("SCAR_FLEET_SIZE", 4).max(1);
    let heterogeneous = env_flag("SCAR_FLEET_HET", true);
    let (horizon_s, default_horizon) = match std::env::var("SCAR_FLEET_HORIZON_S") {
        Err(_) => (DEFAULT_HORIZON_S, true),
        Ok(v) => match v.trim().parse::<f64>() {
            Ok(h) if h > 0.0 && h.is_finite() => (h, false),
            _ => {
                eprintln!("SCAR_FLEET_HORIZON_S={v:?} is not a positive horizon in seconds");
                std::process::exit(2);
            }
        },
    };
    let kinds = match std::env::var("SCAR_DISPATCH") {
        Err(_) => DispatchKind::builtins(),
        Ok(spec) => vec![DispatchKind::parse(&spec).unwrap_or_else(|e| {
            eprintln!("SCAR_DISPATCH: {e}");
            std::process::exit(2);
        })],
    };
    let full_sweep = kinds.len() == DispatchKind::builtins().len();

    let telemetry = Telemetry::from_env();
    // burst-reshaped AR/VR traffic (same mean rates, Markov-modulated
    // on/off arrivals, per-frame deadlines kept): queue shapes vary round
    // to round, so schedule-cache warmth is earned, not saturated — the
    // regime where routing policy actually moves the hit rate
    let mix = TrafficMix::arvr(0xF1EE7).reshaped(TrafficShape::Burst);
    let make_replicas = |parallelism: Parallelism| {
        let base = ServeConfig {
            parallelism,
            ..ServeConfig::default()
        };
        if heterogeneous {
            ReplicaSpec::heterogeneous(fleet_size, Profile::ArVr, base)
        } else {
            ReplicaSpec::homogeneous(fleet_size, Profile::ArVr, base)
        }
    };
    let replica_names: Vec<String> = make_replicas(Parallelism::Serial)
        .iter()
        .map(|r| r.mcm.name().to_string())
        .collect();
    println!(
        "fleet: {fleet_size} replicas [{}] | mix {} ({:.0} req/s offered, {horizon_s} s horizon)",
        replica_names.join(", "),
        mix.name,
        mix.offered_rps()
    );

    let run_policy = |kind: &DispatchKind| {
        let run_at = |parallelism: Parallelism| {
            let mut fleet = FleetSim::new(
                make_replicas(parallelism),
                FleetConfig {
                    dispatch: kind.clone(),
                    telemetry: telemetry.clone(),
                },
            );
            let t0 = std::time::Instant::now();
            let report = fleet.run(&mix, horizon_s).expect("mix fits each replica");
            (report, t0.elapsed())
        };
        let (serial_report, serial_wall) = run_at(Parallelism::Serial);
        let (report, wall) = if telemetry.trace_enabled() {
            (serial_report, serial_wall)
        } else {
            let (fixed_report, fixed_wall) = run_at(Parallelism::Fixed(4));
            assert_eq!(
                serial_report, fixed_report,
                "fleet determinism: Serial and Fixed(4) reports must be byte-identical"
            );
            assert_eq!(
                serial_report.to_string(),
                fixed_report.to_string(),
                "fleet determinism: rendered reports must match byte-for-byte"
            );
            (serial_report, serial_wall.min(fixed_wall))
        };
        PolicyRun {
            kind: kind.clone(),
            report,
            wall,
        }
    };

    let mut runs = Vec::with_capacity(kinds.len());
    for kind in &kinds {
        let run = run_policy(kind);
        println!("\n── dispatch: {}\n{}", kind.name(), run.report);
        println!("wall {:.1?} (best of the parallelism passes)", run.wall);
        runs.push(run);
    }

    // conservation + scale gates
    for run in &runs {
        let r = &run.report;
        assert_eq!(
            r.offered,
            r.completed + r.rejected,
            "{}: fleet conservation",
            r.dispatch
        );
        assert_eq!(
            r.offered,
            r.replicas.iter().map(|rep| rep.routed).sum::<usize>(),
            "{}: every arrival routed exactly once",
            r.dispatch
        );
        assert_eq!(
            r.offered, runs[0].report.offered,
            "identical traffic under every policy"
        );
    }
    if default_horizon {
        assert!(
            runs[0].report.offered >= 1_000_000,
            "scale floor: the default horizon must offer ≥1M arrivals (got {})",
            runs[0].report.offered
        );
    }
    println!(
        "\nacceptance: conservation holds across {} polic{} at {} arrivals: ok",
        runs.len(),
        if runs.len() == 1 { "y" } else { "ies" },
        runs[0].report.offered
    );

    // the headline comparison: sticky routing keeps per-replica caches warm
    if full_sweep {
        let rate = |name: &str| {
            runs.iter()
                .find(|r| r.report.dispatch == name)
                .map(|r| r.report.cache_hit_rate())
                .expect("full sweep includes it")
        };
        let (rr, affinity) = (rate("round-robin"), rate("cache-affinity"));
        assert!(
            affinity > rr,
            "cache-affinity hit rate {affinity:.4} must strictly beat round-robin {rr:.4}"
        );
        println!(
            "acceptance: cache-affinity hit rate {:.2}% > round-robin {:.2}%: ok",
            affinity * 100.0,
            rr * 100.0
        );
    }
    if env_flag("SCAR_PERF_GATE", false) {
        for run in &runs {
            assert!(
                run.wall.as_secs_f64() <= WALL_CEILING_S,
                "perf gate: {} wall {:.1} s exceeds the {WALL_CEILING_S} s ceiling",
                run.report.dispatch,
                run.wall.as_secs_f64()
            );
        }
        println!("perf gate: every policy under the {WALL_CEILING_S} s wall ceiling: ok");
    }

    let json = format!(
        "{{\n  \"mix\": \"{}\",\n  \"horizon_s\": {horizon_s},\n  \"offered\": {},\n  \
         \"fleet_size\": {fleet_size},\n  \"heterogeneous\": {heterogeneous},\n  \
         \"replicas\": [{}],\n  \"results\": {{\n{}\n  }}\n}}\n",
        mix.name,
        runs[0].report.offered,
        replica_names
            .iter()
            .map(|n| format!("\"{n}\""))
            .collect::<Vec<_>>()
            .join(", "),
        runs.iter().map(policy_json).collect::<Vec<_>>().join(",\n"),
    );
    std::fs::write("BENCH_fleet.json", json).expect("write BENCH_fleet.json");
    println!("wrote BENCH_fleet.json");

    // detail artifact: the rendered per-replica tables, gitignored
    let detail = runs
        .iter()
        .map(|r| format!("# {:?}\n{}", r.kind, r.report))
        .collect::<Vec<_>>()
        .join("\n");
    std::fs::write("ARTIFACT_fleet_reports.txt", detail).expect("write ARTIFACT_fleet_reports.txt");
    println!("wrote ARTIFACT_fleet_reports.txt");

    if let Some(summary) = telemetry.wall_summary() {
        println!("{summary}");
    }
    if telemetry
        .write_trace("TRACE_bench_fleet.json")
        .expect("write TRACE_bench_fleet.json")
    {
        println!("wrote TRACE_bench_fleet.json (Chrome trace_event; load in Perfetto)");
    }
}
