//! Replay a saved `ScheduleArtifact` sweep and diff it against a fresh
//! re-evaluation — the fidelity re-anchoring harness.
//!
//! ```sh
//! # exact-replay regression over a recorded serving round (zero drift
//! # expected: serve_sim records under the default serving config)
//! cargo run --release -p scar-bench --bin replay -- ARTIFACT_serve_datacenter.json
//!
//! # warm-start the cost database from a snapshot before replaying
//! SCAR_COST_DB=costdb.json cargo run --release -p scar-bench --bin replay -- ARTIFACT_serve_AR-VR.json
//!
//! # table04 sweeps were recorded under nsplits=4: reconstruct that
//! SCAR_NSPLITS=4 cargo run --release -p scar-bench --bin replay -- ARTIFACT_table04_edp.json
//!
//! # what-if: re-target every recorded request at a different package
//! SCAR_REPLAY_MCM=simba_nvd cargo run --release -p scar-bench --bin replay -- ARTIFACT_table04_edp.json
//!
//! # what-if: re-price every recorded request under a wireless fabric
//! SCAR_REPLAY_FABRIC=wireless cargo run --release -p scar-bench --bin replay -- ARTIFACT_table04_edp.json
//! ```
//!
//! Artifacts record the answering scheduler's *name and configuration*
//! (window splits, search driver); replay reconstructs the recorded
//! configuration automatically. `SCAR_NSPLITS` / `SCAR_SEARCH` (`brute`
//! default, `evolutionary` for 6×6 sweeps) remain as fallbacks for
//! artifacts recorded before configurations were persisted — a recorded
//! configuration always wins over these knobs.
//!
//! Exit code 1 when replaying **without** an MCM override and any
//! artifact fails to reproduce exactly — or could not be replayed at all
//! (unknown scheduler name): under an unchanged cost model, scheduling is
//! deterministic, so drift means the model (or a scheduler
//! reconstruction) changed out from under the recording. With
//! `SCAR_REPLAY_MCM` or `SCAR_REPLAY_FABRIC` set, drift is the expected
//! output, not an error (a fabric swaps the whole `Lat_com` pricing, so
//! schedules legitimately move — that's the experiment).
//! With `SCAR_REPLAY_BAND=<frac>` set (e.g. `0.05` for ±5%), the gate is
//! the fidelity *tolerance band* instead of exactness: totals drift
//! within the band passes, outside it fails — the re-anchoring mode for
//! intentional cost-model changes. Bands judge totals only (a changed
//! model legitimately re-places work), so band mode does not check
//! placement identity; use the default exactness gate for
//! unchanged-model regressions.

use scar_bench::replay::{band_violations, replay_artifacts, ReplayOptions, ToleranceBand};
use scar_core::{ScheduleArtifact, SearchKind, Session};
use scar_maestro::Dataflow;
use scar_mcm::templates::{self, Profile};
use scar_mcm::McmConfig;
use scar_serve::PolicyRegistry;
use std::process::ExitCode;

/// Resolves `SCAR_REPLAY_MCM` names to template constructors. Profiles
/// default to datacenter; suffix `:arvr` picks the AR/VR chiplet profile
/// (e.g. `het_sides:arvr`).
fn mcm_by_name(spec: &str) -> Option<McmConfig> {
    let (name, profile) = match spec.rsplit_once(':') {
        Some((n, "arvr")) => (n, Profile::ArVr),
        Some((n, "datacenter")) => (n, Profile::Datacenter),
        _ => (spec, Profile::Datacenter),
    };
    Some(match name {
        "simba_shi" => templates::simba_3x3(profile, Dataflow::ShidiannaoLike),
        "simba_nvd" => templates::simba_3x3(profile, Dataflow::NvdlaLike),
        "het_cb" => templates::het_cb_3x3(profile),
        "het_sides" => templates::het_sides_3x3(profile),
        "het_t" => templates::het_t_3x3(profile),
        "het_cross" => templates::het_cross_6x6(profile),
        _ => return None,
    })
}

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: replay <ARTIFACT_*.json> [more artifact files…]");
        eprintln!(
            "env: SCAR_COST_DB=<snapshot> (warm-start costs), \
             SCAR_REPLAY_MCM=<template[:profile]>, \
             SCAR_REPLAY_FABRIC=none|nop|wireless, SCAR_NSPLITS=<n>, \
             SCAR_SEARCH=brute|evolutionary, SCAR_REPLAY_BAND=<frac> \
             (±band gate instead of exactness)"
        );
        return ExitCode::from(2);
    }

    let band: Option<ToleranceBand> = match std::env::var("SCAR_REPLAY_BAND") {
        Ok(f) => match f.parse::<f64>() {
            Ok(frac) if frac >= 0.0 && frac.is_finite() => Some(ToleranceBand::uniform(frac)),
            _ => {
                eprintln!("SCAR_REPLAY_BAND={f:?} is not a non-negative fraction");
                return ExitCode::from(2);
            }
        },
        Err(_) => None,
    };

    let mut options = ReplayOptions::default();
    if let Ok(spec) = std::env::var("SCAR_REPLAY_MCM") {
        match mcm_by_name(&spec) {
            Some(mcm) => {
                println!("re-targeting every request at {mcm}");
                options.mcm_override = Some(mcm);
            }
            None => {
                eprintln!(
                    "SCAR_REPLAY_MCM={spec:?} is not a known template \
                     (simba_shi, simba_nvd, het_cb, het_sides, het_t, het_cross; \
                     optional :datacenter/:arvr suffix)"
                );
                return ExitCode::from(2);
            }
        }
    }

    if let Ok(spec) = std::env::var("SCAR_REPLAY_FABRIC") {
        match scar_mcm::InterconnectSpec::parse(&spec) {
            Ok(fabric) => {
                println!(
                    "re-pricing every request under the {} fabric",
                    fabric.as_ref().map_or("none (stripped)", |f| f.label())
                );
                options.fabric_override = Some(fabric);
            }
            Err(e) => {
                eprintln!("SCAR_REPLAY_FABRIC: {e}");
                return ExitCode::from(2);
            }
        }
    }

    // fallback knobs for artifacts recorded before scheduler
    // configurations were persisted (a recorded configuration always
    // overrides these, field by field — see `replay_artifacts`)
    if let Ok(n) = std::env::var("SCAR_NSPLITS") {
        match n.parse() {
            Ok(n) => options.serve_config.nsplits = n,
            Err(_) => {
                eprintln!("SCAR_NSPLITS={n:?} is not a window-split count");
                return ExitCode::from(2);
            }
        }
    }
    if let Ok(s) = std::env::var("SCAR_SEARCH") {
        options.serve_config.search = match s.trim().to_ascii_lowercase().as_str() {
            "brute" | "bruteforce" | "brute-force" => SearchKind::BruteForce,
            "evo" | "evolutionary" => SearchKind::Evolutionary(Default::default()),
            other => {
                eprintln!("SCAR_SEARCH={other:?} is not `brute` or `evolutionary`");
                return ExitCode::from(2);
            }
        };
    }

    let session = Session::new();
    if let Ok(snapshot) = std::env::var("SCAR_COST_DB") {
        match session.load_costs(&snapshot) {
            Ok(n) => {
                println!("cost database warm-started from {snapshot}: {n} entries, 0 evaluations")
            }
            Err(e) => {
                eprintln!("SCAR_COST_DB={snapshot}: {e}");
                return ExitCode::from(2);
            }
        }
    }

    let registry = PolicyRegistry::with_zoo();
    let what_if = options.mcm_override.is_some() || options.fabric_override.is_some();
    let mut all_exact = true;
    let mut violations = 0usize;
    let mut skipped = 0usize;
    for path in &paths {
        let artifacts = match ScheduleArtifact::load_all(path) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("{path}: {e}");
                return ExitCode::from(2);
            }
        };
        let diffs = replay_artifacts(&session, &artifacts, &registry, &options);
        // a skipped artifact (unknown scheduler name) reproduced nothing:
        // it must fail the exactness gate, not silently pass it
        skipped += artifacts.len() - diffs.len();
        println!(
            "── {path}: {} artifacts, {} replayed",
            artifacts.len(),
            diffs.len()
        );
        for d in &diffs {
            println!("{d}");
            all_exact &= d.is_exact();
        }
        if let Some(band) = &band {
            for v in band_violations(&diffs, band) {
                eprintln!("band violation (±{:.2}%): {v}", band.latency_frac * 100.0);
                violations += 1;
            }
        }
    }
    println!(
        "cost database: {} entries, {} evaluations during replay",
        session.cached_costs(),
        session.cost_evaluations()
    );

    if !what_if && skipped > 0 {
        eprintln!(
            "{skipped} artifact(s) could not be replayed (scheduler name unknown to the registry)"
        );
        return ExitCode::FAILURE;
    }
    if let Some(band) = &band {
        // band mode: the ± tolerance is the gate (re-anchoring after an
        // intentional model change); exactness is not required
        if violations > 0 {
            eprintln!(
                "{violations} artifact(s) drifted outside the ±{:.2}% tolerance band",
                band.latency_frac * 100.0
            );
            return ExitCode::FAILURE;
        }
        println!(
            "all artifacts re-anchor within the ±{:.2}% tolerance band",
            band.latency_frac * 100.0
        );
        return ExitCode::SUCCESS;
    }
    if !what_if && !all_exact {
        eprintln!(
            "replay drifted from the recording under an unchanged MCM — cost model or \
             scheduler reconstruction changed (for sweeps recorded under non-default \
             SCAR knobs predating recorded configurations, set SCAR_NSPLITS / SCAR_SEARCH)"
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
