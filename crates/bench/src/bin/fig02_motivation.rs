//! Figure 2 — motivational study on a 2×2 MCM.
//!
//! Workload: 3 layers from ResNet-50's second bottleneck block plus one
//! GPT feed-forward layer; 4096-PE chiplets with 10 MB L2. Compares
//! NN-baton-style single-model scheduling against SCAR's heterogeneous
//! spatial and spatio-temporal schedules, reporting EDP ratios.

use scar_bench::table::{fmt_joules, fmt_seconds, ratio, Table};
use scar_core::baselines::NnBaton;
use scar_core::{OptMetric, Scar, ScheduleRequest, Scheduler, SearchBudget, Session};
use scar_maestro::Dataflow;
use scar_mcm::templates::{het_2x2, homo_2x2, Profile};
use scar_workloads::{ModelBuilder, Scenario, ScenarioModel, UseCase};

/// Three layers of ResNet-50's second bottleneck (stage 1, block 1).
fn resnet_block() -> scar_workloads::Model {
    ModelBuilder::new("ResNet-block2")
        .conv("conv1", 56, 256, 64, 1, 1)
        .conv("conv2", 56, 64, 64, 3, 1)
        .conv("conv3", 56, 64, 256, 1, 1)
        .build()
}

/// One GPT feed-forward (FFN-up) layer.
fn gpt_layer() -> scar_workloads::Model {
    ModelBuilder::new("GPT-FFN")
        .gemm("ffn_up", 5120, 1280, 128)
        .build()
}

fn single(model: scar_workloads::Model) -> Scenario {
    Scenario::new(
        format!("fig2-{}", model.name()),
        UseCase::Datacenter,
        vec![ScenarioModel { model, batch: 1 }],
    )
}

fn multi() -> Scenario {
    Scenario::new(
        "fig2-multi",
        UseCase::Datacenter,
        vec![
            ScenarioModel {
                model: resnet_block(),
                batch: 1,
            },
            ScenarioModel {
                model: gpt_layer(),
                batch: 1,
            },
        ],
    )
}

fn main() {
    println!("== Figure 2: motivational study (2x2 MCM, 4096 PEs, 10 MB L2) ==\n");
    // one session: every configuration below shares the same cost database
    let session = Session::new();
    let request = |sc: &Scenario, mcm: scar_mcm::McmConfig| {
        ScheduleRequest::new(sc.clone(), mcm)
            .metric(OptMetric::Edp)
            .budget(SearchBudget::default())
    };
    let scar = |nsplits: usize| Scar::builder().nsplits(nsplits).build();

    // --- single-model case (A1-A3): the ResNet block ---
    let rn = single(resnet_block());
    let a1 = NnBaton::new()
        .schedule(
            &session,
            &request(&rn, homo_2x2(Profile::Datacenter, Dataflow::ShidiannaoLike)),
        )
        .expect("A1");
    let a2 = NnBaton::new()
        .schedule(
            &session,
            &request(&rn, homo_2x2(Profile::Datacenter, Dataflow::NvdlaLike)),
        )
        .expect("A2");
    let a3 = scar(0)
        .schedule(&session, &request(&rn, het_2x2(Profile::Datacenter)))
        .expect("A3");

    let mut t = Table::new(vec![
        "Config".into(),
        "Scheduler".into(),
        "Latency".into(),
        "Energy".into(),
        "EDP (J*s)".into(),
        "vs A1".into(),
    ]);
    let base = a1.total().edp();
    for (tag, name, r) in [
        ("A1", "NN-baton w/ Shi", &a1),
        ("A2", "NN-baton w/ NVD", &a2),
        ("A3", "Ours w/ Heterog.", &a3),
    ] {
        let tot = r.total();
        t.row(vec![
            tag.into(),
            name.into(),
            fmt_seconds(tot.latency_s),
            fmt_joules(tot.energy_j),
            format!("{:.3e}", tot.edp()),
            ratio(tot.edp(), base),
        ]);
    }
    println!("Single model (ResNet block):\n{t}");

    // --- multi-model case (B1-B3) ---
    // NN-baton is agnostic to the heterogeneous composition: its starting
    // chiplet on the 2×2 package happens to be the Shidiannao-like one
    // (id 3), which is catastrophic for the GPT feed-forward layer.
    let mm = multi();
    let b1 = NnBaton::from_chiplet(3)
        .schedule(&session, &request(&mm, het_2x2(Profile::Datacenter)))
        .expect("B1");
    let b2 = scar(0)
        .schedule(&session, &request(&mm, het_2x2(Profile::Datacenter)))
        .expect("B2");
    let b3 = scar(1)
        .schedule(&session, &request(&mm, het_2x2(Profile::Datacenter)))
        .expect("B3");

    let mut t = Table::new(vec![
        "Config".into(),
        "Scheduler".into(),
        "Latency".into(),
        "Energy".into(),
        "EDP (J*s)".into(),
        "vs B1".into(),
    ]);
    let base = b1.total().edp();
    for (tag, name, r) in [
        ("B1", "NN-baton (sequential)", &b1),
        ("B2", "Ours: multi-model spatial", &b2),
        ("B3", "Ours: spatio-temporal", &b3),
    ] {
        let tot = r.total();
        t.row(vec![
            tag.into(),
            name.into(),
            fmt_seconds(tot.latency_s),
            fmt_joules(tot.energy_j),
            format!("{:.3e}", tot.edp()),
            ratio(tot.edp(), base),
        ]);
    }
    println!("Multi model (ResNet block + GPT layer):\n{t}");
    println!(
        "paper shape: A3 < A2 < A1; B2/B3 ~0.3x of B1 (spatial/spatio-temporal heterogeneous wins)"
    );
}
