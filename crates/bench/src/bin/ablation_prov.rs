//! §V-E ablation — rule-based vs exhaustive PROV: repeats the EDP search
//! for scenarios 3–5 comparing Equation-2 uniform node distribution
//! against exhaustive enumeration of node distributions.

use scar_bench::strategy::quick_budget;
use scar_bench::table::Table;
use scar_core::{OptMetric, ProvisionRule, Scar, ScheduleRequest, Scheduler, Session};
use scar_maestro::Dataflow;
use scar_mcm::templates::{het_sides_3x3, simba_3x3, Profile};
use scar_workloads::Scenario;

fn main() {
    let budget = quick_budget();
    let session = Session::new();
    println!("== Ablation: PROV rule (EDP search, Sc3-5) ==\n");
    let mut t = Table::new(vec![
        "Scenario".into(),
        "Strategy".into(),
        "Uniform EDP".into(),
        "Exhaustive EDP".into(),
        "gain".into(),
    ]);
    for scn in 3..=5usize {
        let sc = Scenario::datacenter(scn);
        for (name, mcm) in [
            (
                "Simba (NVD)",
                simba_3x3(Profile::Datacenter, Dataflow::NvdlaLike),
            ),
            ("Het-Sides", het_sides_3x3(Profile::Datacenter)),
        ] {
            let run = |rule: ProvisionRule| {
                let request = ScheduleRequest::new(sc.clone(), mcm.clone())
                    .metric(OptMetric::Edp)
                    .budget(budget.clone());
                Scar::builder()
                    .provisioning(rule)
                    .build()
                    .schedule(&session, &request)
                    .map(|r| r.total().edp())
            };
            let uniform = run(ProvisionRule::Uniform);
            let exhaustive = run(ProvisionRule::Exhaustive { max: 64 });
            if let (Ok(u), Ok(e)) = (uniform, exhaustive) {
                t.row(vec![
                    format!("Sc{scn}"),
                    name.into(),
                    format!("{u:.4}"),
                    format!("{e:.4}"),
                    format!("{:.2}x", u / e),
                ]);
            }
        }
    }
    println!("{t}");
    println!("paper shape: exhaustive search refines results slightly but the uniform-rule insights (who wins each scenario) are unchanged.");
}
