//! §V-E ablation — time partitioning: EDP search on Scenario 4 /
//! Het-Sides while sweeping `nsplits` from 0 to 5.
//!
//! The paper reports a ~1.25× average EDP improvement rate up to
//! nsplits = 4 and diminishing returns beyond.

use scar_bench::strategy::{default_budget, Strategy};
use scar_bench::table::Table;
use scar_core::{OptMetric, Session};
use scar_mcm::templates::Profile;
use scar_workloads::Scenario;

fn main() {
    let sc = Scenario::datacenter(4);
    let budget = default_budget();
    let session = Session::new();
    println!("== Ablation: nsplits sweep (Sc4, Het-Sides, EDP search) ==\n");
    let mut t = Table::new(vec![
        "nsplits".into(),
        "windows".into(),
        "Latency (s)".into(),
        "Energy (J)".into(),
        "EDP (J*s)".into(),
        "EDP vs prev".into(),
    ]);
    let mut prev: Option<f64> = None;
    for nsplits in 0..=5usize {
        let r = Strategy::HetSides
            .run(
                &session,
                &sc,
                Profile::Datacenter,
                OptMetric::Edp,
                nsplits,
                &budget,
            )
            .expect("feasible");
        let tot = r.total();
        let rate = prev
            .map(|p| format!("{:.2}x", p / tot.edp()))
            .unwrap_or_else(|| "-".into());
        t.row(vec![
            nsplits.to_string(),
            r.windows().len().to_string(),
            format!("{:.4}", tot.latency_s),
            format!("{:.4}", tot.energy_j),
            format!("{:.4}", tot.edp()),
            rate,
        ]);
        prev = Some(tot.edp());
    }
    println!("{t}");
    println!("paper shape: improvement rate stagnates after nsplits=4 (the paper's default).");
}
