//! Cold-vs-warm start: what a persisted MAESTRO cost database buys.
//!
//! Runs the same serving simulation twice per traffic mix — once against
//! an empty cost database (every per-layer cost evaluated by the
//! analytical model) and once restored from the snapshot the cold run
//! persisted (zero evaluations) — and records wall clock, evaluation
//! counts, and the resulting speedup in `BENCH_cold_start.json`.
//!
//! The two runs must produce **bit-identical serving reports**: the
//! snapshot only changes whether the cost model executes, never what it
//! would have returned. The binary asserts both that and the warm run's
//! zero evaluation count, so it doubles as the cold-start acceptance
//! gate.
//!
//! ```sh
//! cargo run --release -p scar-bench --bin bench_cold_start
//! ```

use scar_mcm::templates::{het_sides_3x3, Profile};
use scar_serve::{ServeConfig, ServeSim, TrafficMix};
use std::time::Instant;

struct Measurement {
    mix: String,
    cold_wall_s: f64,
    warm_wall_s: f64,
    cold_evaluations: u64,
    warm_evaluations: u64,
    snapshot_entries: usize,
}

fn main() {
    let horizon_s = 1.0;
    let path = std::path::PathBuf::from("BENCH_cold_start_costdb.json");
    let mut measurements = Vec::new();

    for (profile, mix) in [
        (Profile::Datacenter, TrafficMix::datacenter(0x5CA2)),
        (Profile::ArVr, TrafficMix::arvr(0x5CA2)),
    ] {
        // a fresh snapshot per mix isolates the measurement
        std::fs::remove_file(&path).ok();
        let mcm = het_sides_3x3(profile);
        let cfg = || ServeConfig {
            cost_db_path: Some(path.clone()),
            ..ServeConfig::default()
        };

        let mut cold_sim = ServeSim::new(&mcm, cfg());
        let t0 = Instant::now();
        let cold = cold_sim.run(&mix, horizon_s).expect("mix fits the 3x3");
        let cold_wall_s = t0.elapsed().as_secs_f64();

        let mut warm_sim = ServeSim::new(&mcm, cfg());
        let snapshot_entries = warm_sim.session().cached_costs();
        assert!(snapshot_entries > 0, "warm sim must restore the snapshot");
        let t1 = Instant::now();
        let warm = warm_sim.run(&mix, horizon_s).expect("identical mix fits");
        let warm_wall_s = t1.elapsed().as_secs_f64();

        assert_eq!(
            warm.cost_evaluations, 0,
            "a covered snapshot must skip MAESTRO entirely"
        );
        assert!(cold.cost_evaluations > 0, "cold start pays the model");
        // identical outcomes: persistence changes cost, never content
        assert_eq!(warm.latency, cold.latency, "{}", mix.name);
        assert_eq!(warm.energy_j, cold.energy_j);
        assert_eq!(warm.makespan_s, cold.makespan_s);
        assert_eq!(warm.windows_scheduled, cold.windows_scheduled);

        println!(
            "{:<24} cold {:.3}s ({} evaluations) → warm {:.3}s (0 evaluations), {:.2}x",
            mix.name,
            cold_wall_s,
            cold.cost_evaluations,
            warm_wall_s,
            cold_wall_s / warm_wall_s
        );
        measurements.push(Measurement {
            mix: mix.name.clone(),
            cold_wall_s,
            warm_wall_s,
            cold_evaluations: cold.cost_evaluations,
            warm_evaluations: warm.cost_evaluations,
            snapshot_entries,
        });
    }
    std::fs::remove_file(&path).ok();

    // hand-rolled JSON (same style as BENCH_search_parallel.json): the
    // vendored serde works too, but a bench report wants field order
    let rows: Vec<String> = measurements
        .iter()
        .map(|m| {
            format!(
                "  {{\n    \"mix\": \"{}\",\n    \"cold_wall_s\": {:.6},\n    \"warm_wall_s\": {:.6},\n    \"speedup\": {:.3},\n    \"cold_evaluations\": {},\n    \"warm_evaluations\": {},\n    \"snapshot_entries\": {}\n  }}",
                m.mix,
                m.cold_wall_s,
                m.warm_wall_s,
                m.cold_wall_s / m.warm_wall_s,
                m.cold_evaluations,
                m.warm_evaluations,
                m.snapshot_entries
            )
        })
        .collect();
    let json = format!("[\n{}\n]\n", rows.join(",\n"));
    std::fs::write("BENCH_cold_start.json", &json).expect("write BENCH_cold_start.json");
    println!("wrote BENCH_cold_start.json");
}
