//! Table V + Figure 10 — AR/VR (XRBench) EDP-search results on the 3×3
//! MCM with 256-PE chiplets, normalized by Standalone (NVD).

use scar_bench::strategy::{default_budget, run_strategies, Strategy};
use scar_bench::table::Table;
use scar_core::{EvalTotals, OptMetric, Session};
use scar_mcm::templates::Profile;
use scar_workloads::Scenario;

fn main() {
    let budget = default_budget();
    let session = Session::new();
    let strategies = Strategy::table_iv();
    let scenarios = Scenario::all_arvr();

    let mut results: Vec<Vec<Option<EvalTotals>>> =
        vec![vec![None; scenarios.len()]; strategies.len()];
    for (si, sc) in scenarios.iter().enumerate() {
        for r in run_strategies(
            &session,
            &strategies,
            sc,
            Profile::ArVr,
            &OptMetric::Edp,
            4,
            &budget,
        ) {
            if let Some(pos) = strategies.iter().position(|s| s.name() == r.name) {
                results[pos][si] = Some(r.result.total());
            }
        }
    }
    let base_idx = strategies
        .iter()
        .position(|s| s.name() == "Stand.(NVD)")
        .unwrap();

    println!("== Table V / Figure 10: AR/VR EDP search (normalized by Stand.(NVD)) ==\n");
    for (title, f) in [
        (
            "Relative Latency",
            Box::new(|t: &EvalTotals| t.latency_s) as Box<dyn Fn(&EvalTotals) -> f64>,
        ),
        ("Relative EDP", Box::new(|t: &EvalTotals| t.edp())),
    ] {
        let mut table = Table::new(
            std::iter::once("Strategy".to_string())
                .chain((6..=10).map(|i| format!("Sc{i}")))
                .collect(),
        );
        for (pos, strat) in strategies.iter().enumerate() {
            let mut row = vec![strat.name().to_string()];
            for (si, cell) in results[pos].iter().enumerate() {
                let base = results[base_idx][si].as_ref().map(&f);
                row.push(match (cell, base) {
                    (Some(t), Some(b)) if b > 0.0 => format!("{:.2}", f(t) / b),
                    _ => "-".into(),
                });
            }
            table.row(row);
        }
        println!("{title}:\n{table}");
    }
    println!("paper shape: heterogeneous strategies win the diverse scenarios (8-10); the heaviest AR scenarios (6-7) stay close to the NVD-based schedules under resource contention.");
}
