//! Figure 12 — EDP search for Scenarios 3 and 4 on the triangular NoP
//! topologies (Simba-T Shi/NVD and Het-T), normalized by Standalone (NVD).
//!
//! Demonstrates §V-E's topology generalization: SCAR only needs adjacency-
//! matrix connectivity.

use scar_bench::strategy::{default_budget, run_strategies, Strategy};
use scar_bench::table::Table;
use scar_core::{OptMetric, Session};
use scar_mcm::templates::Profile;
use scar_workloads::Scenario;

fn main() {
    let budget = default_budget();
    let session = Session::new();
    let mut strategies = vec![Strategy::StandaloneNvd];
    strategies.extend(Strategy::triangular());

    println!("== Figure 12: triangular NoP, EDP search (normalized by Stand.(NVD)) ==\n");
    let mut t = Table::new(vec![
        "Strategy".into(),
        "Sc3 rel EDP".into(),
        "Sc4 rel EDP".into(),
        "Sc3 rel Lat".into(),
        "Sc4 rel Lat".into(),
    ]);
    let mut cols: Vec<Vec<(String, scar_core::EvalTotals)>> = Vec::new();
    for scn in [3usize, 4] {
        let sc = Scenario::datacenter(scn);
        cols.push(
            run_strategies(
                &session,
                &strategies,
                &sc,
                Profile::Datacenter,
                &OptMetric::Edp,
                4,
                &budget,
            )
            .into_iter()
            .map(|r| (r.name, r.result.total()))
            .collect(),
        );
    }
    for strat in &strategies {
        let mut row = vec![strat.name().to_string()];
        for f in [
            Box::new(|t: &scar_core::EvalTotals| t.edp())
                as Box<dyn Fn(&scar_core::EvalTotals) -> f64>,
            Box::new(|t: &scar_core::EvalTotals| t.latency_s),
        ] {
            for col in &cols {
                let base = col
                    .iter()
                    .find(|(n, _)| n == "Stand.(NVD)")
                    .map(|(_, t)| f(t));
                let mine = col
                    .iter()
                    .find(|(n, _)| n == strat.name())
                    .map(|(_, t)| f(t));
                row.push(match (mine, base) {
                    (Some(m), Some(b)) if b > 0.0 => format!("{:.2}", m / b),
                    _ => "-".into(),
                });
            }
        }
        t.row(row);
    }
    println!("{t}");
    println!("paper shape: the same relative patterns as the 3x3 mesh, with shifted gains (\"varying relative gains\", SV-E): NVD-based strategies keep the LM-heavy scenarios; Shi-homogeneous trails.");
}
