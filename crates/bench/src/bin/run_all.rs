//! Runs every experiment binary in DESIGN.md §4's index, in order, then
//! the fleet-serving benchmark (DESIGN.md §12).

use std::process::Command;

fn main() {
    let experiments = [
        "fig02_motivation",
        "table04_datacenter",
        "fig07_normalized_grid",
        "fig08_pareto_datacenter",
        "fig09_table06_window_breakdown",
        "table05_fig10_arvr",
        "fig11_pareto_arvr",
        "fig12_triangular",
        "fig13_6x6_evolutionary",
        "ablation_nsplits",
        "ablation_prov",
        "ablation_packing",
        "bench_fleet",
    ];
    let exe = std::env::current_exe().expect("current exe path");
    let dir = exe.parent().expect("target dir");
    for name in experiments {
        println!("\n################ {name} ################\n");
        let status = Command::new(dir.join(name))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {name}: {e}"));
        if !status.success() {
            eprintln!("{name} exited with {status}");
        }
    }
}
