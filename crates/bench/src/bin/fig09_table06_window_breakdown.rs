//! Figure 9 + Table VI — anatomy of the top-scoring Het-Sides schedule for
//! Scenario 4 (EDP search): per-window chiplet allocations and the
//! end-to-end latency breakdown per model.

use scar_bench::strategy::{default_budget, Strategy};
use scar_bench::table::Table;
use scar_core::baselines::Standalone;
use scar_core::{OptMetric, ScheduleRequest, Scheduler, Session};
use scar_mcm::templates::Profile;
use scar_workloads::Scenario;

fn main() {
    let sc = Scenario::datacenter(4);
    let session = Session::new();
    let r = Strategy::HetSides
        .run(
            &session,
            &sc,
            Profile::Datacenter,
            OptMetric::Edp,
            4,
            &default_budget(),
        )
        .expect("Sc4 on Het-Sides is feasible");

    println!(
        "== Figure 9: top-scoring Het-Sides schedule for {} ==\n",
        sc.name()
    );
    let mcm = Strategy::HetSides.mcm(Profile::Datacenter);
    println!("chiplet dataflows (row-major 3x3):");
    for row in 0..3 {
        let cells: Vec<String> = (0..3)
            .map(|col| {
                let id = row * 3 + col;
                format!("{:>2}:{}", id, mcm.chiplet(id).dataflow.short_name())
            })
            .collect();
        println!("    {}", cells.join("  "));
    }
    println!();
    let mut cumulative = 0.0;
    for w in r.windows() {
        cumulative += w.latency_s;
        println!(
            "Win {} ({:.2} s cumulative, window lat {:.3} s):",
            w.index, cumulative, w.latency_s
        );
        for m in &w.models {
            let chiplets: Vec<String> = m
                .assignments
                .iter()
                .map(|(seg, c)| {
                    format!(
                        "chpl{}:{}[{}..{}]",
                        c,
                        mcm.chiplet(*c).dataflow.short_name(),
                        seg.start,
                        seg.end
                    )
                })
                .collect();
            println!(
                "    {:10} layers {:>3}..{:<3} b'={:<2} -> {}",
                m.model_name,
                m.layers.start,
                m.layers.end,
                m.mini_batch,
                chiplets.join(" -> ")
            );
        }
    }

    // Table VI: per-model per-window latency + ideal (standalone) latency
    println!("\n== Table VI: end-to-end latency breakdown (seconds) ==");
    let ideal = Standalone::new()
        .schedule(&session, &ScheduleRequest::new(sc.clone(), mcm.clone()))
        .expect("standalone fits");
    let mut header = vec!["Model".to_string()];
    header.extend(r.windows().iter().map(|w| format!("W{}", w.index)));
    header.push("ideal".into());
    header.push("tot".into());
    header.push("#layers".into());
    let mut t = Table::new(header);
    for (mi, sm) in sc.models().iter().enumerate() {
        let mut row = vec![sm.model.name().to_string()];
        let mut tot = 0.0;
        for w in r.windows() {
            let cell = w.models.iter().find(|m| m.model == mi);
            match cell {
                Some(m) => {
                    tot += m.latency_s;
                    row.push(format!("{:.3}", m.latency_s));
                }
                None => row.push("0".into()),
            }
        }
        let ideal_lat = ideal.windows()[0]
            .models
            .iter()
            .find(|m| m.model == mi)
            .map(|m| m.latency_s)
            .unwrap_or(0.0);
        row.push(format!("{ideal_lat:.3}"));
        row.push(format!("{tot:.3}"));
        row.push(sm.model.num_layers().to_string());
        t.row(row);
    }
    let mut wrow = vec!["Window".to_string()];
    for w in r.windows() {
        wrow.push(format!("{:.3}", w.latency_s));
    }
    wrow.push("-".into());
    wrow.push(format!("{:.3}", r.total().latency_s));
    wrow.push(sc.num_layers().to_string());
    t.row(wrow);
    println!("{t}");
    println!("paper shape: the greedy packing front-loads the small workloads (ResNet/U-Net finish in early windows); GPT-L and BERT-L dominate the later windows.");
}
