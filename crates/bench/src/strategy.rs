//! The MCM strategies compared throughout the paper's evaluation.
//!
//! A [`Strategy`] names one column of Table IV / Figure 6: an MCM template
//! plus the scheduler family evaluated on it. Strategies run through the
//! core [`Scheduler`] trait — [`Strategy::scheduler`] builds the boxed
//! scheduler, [`Strategy::request`] the [`ScheduleRequest`] — and every
//! strategy of a sweep shares one [`Session`] (one MAESTRO cost database),
//! so a bench binary warms the cache once instead of once per strategy.

use scar_core::baselines::Standalone;
use scar_core::{
    OptMetric, Scar, ScheduleRequest, ScheduleResult, Scheduler, SearchBudget, SearchKind, Session,
};
use scar_maestro::Dataflow;
use scar_mcm::templates::{self, Profile};
use scar_mcm::McmConfig;
use scar_workloads::Scenario;

/// One strategy of Table IV / Figure 6 (3×3 experiments unless noted).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Each model standalone on one Shidiannao-like chiplet.
    StandaloneShi,
    /// Each model standalone on one NVDLA-like chiplet.
    StandaloneNvd,
    /// SCAR on the homogeneous Simba 3×3 (Shi).
    SimbaShi,
    /// SCAR on the homogeneous Simba 3×3 (NVD).
    SimbaNvd,
    /// SCAR on the heterogeneous checkerboard 3×3.
    HetCb,
    /// SCAR on the heterogeneous sides 3×3.
    HetSides,
    /// SCAR on the homogeneous triangular-NoP 3×3 (Shi).
    SimbaTShi,
    /// SCAR on the homogeneous triangular-NoP 3×3 (NVD).
    SimbaTNvd,
    /// SCAR on the heterogeneous triangular-NoP 3×3.
    HetT,
    /// SCAR on the homogeneous Simba 6×6 (Shi), evolutionary search.
    Simba6Shi,
    /// SCAR on the homogeneous Simba 6×6 (NVD), evolutionary search.
    Simba6Nvd,
    /// SCAR on the heterogeneous cross 6×6, evolutionary search.
    HetCross,
}

impl Strategy {
    /// The paper's label for this strategy.
    pub fn name(self) -> &'static str {
        match self {
            Strategy::StandaloneShi => "Stand.(Shi)",
            Strategy::StandaloneNvd => "Stand.(NVD)",
            Strategy::SimbaShi => "Simba (Shi)",
            Strategy::SimbaNvd => "Simba (NVD)",
            Strategy::HetCb => "Het-CB",
            Strategy::HetSides => "Het-Sides",
            Strategy::SimbaTShi => "Simba-T (Shi)",
            Strategy::SimbaTNvd => "Simba-T (NVD)",
            Strategy::HetT => "Het-T",
            Strategy::Simba6Shi => "Simba-6 (Shi)",
            Strategy::Simba6Nvd => "Simba-6 (NVD)",
            Strategy::HetCross => "Het-Cross",
        }
    }

    /// The Table IV strategy set (two standalones, two Simbas, two hets).
    pub fn table_iv() -> [Strategy; 6] {
        [
            Strategy::StandaloneShi,
            Strategy::StandaloneNvd,
            Strategy::SimbaShi,
            Strategy::SimbaNvd,
            Strategy::HetCb,
            Strategy::HetSides,
        ]
    }

    /// The triangular-NoP set of Figure 12.
    pub fn triangular() -> [Strategy; 3] {
        [Strategy::SimbaTShi, Strategy::SimbaTNvd, Strategy::HetT]
    }

    /// The 6×6 set of Figure 13.
    pub fn six_by_six() -> [Strategy; 3] {
        [Strategy::Simba6Shi, Strategy::Simba6Nvd, Strategy::HetCross]
    }

    /// The MCM this strategy schedules onto.
    pub fn mcm(self, profile: Profile) -> McmConfig {
        match self {
            Strategy::StandaloneShi | Strategy::SimbaShi => {
                templates::simba_3x3(profile, Dataflow::ShidiannaoLike)
            }
            Strategy::StandaloneNvd | Strategy::SimbaNvd => {
                templates::simba_3x3(profile, Dataflow::NvdlaLike)
            }
            Strategy::HetCb => templates::het_cb_3x3(profile),
            Strategy::HetSides => templates::het_sides_3x3(profile),
            Strategy::SimbaTShi => templates::simba_t_3x3(profile, Dataflow::ShidiannaoLike),
            Strategy::SimbaTNvd => templates::simba_t_3x3(profile, Dataflow::NvdlaLike),
            Strategy::HetT => templates::het_t_3x3(profile),
            Strategy::Simba6Shi => templates::simba_6x6(profile, Dataflow::ShidiannaoLike),
            Strategy::Simba6Nvd => templates::simba_6x6(profile, Dataflow::NvdlaLike),
            Strategy::HetCross => templates::het_cross_6x6(profile),
        }
    }

    /// The scheduler family this strategy evaluates: the baselines use
    /// their dedicated schedulers, 3×3 strategies SCAR with brute force,
    /// 6×6 strategies SCAR with the evolutionary driver (§V-A).
    pub fn scheduler(self, nsplits: usize) -> Box<dyn Scheduler> {
        match self {
            Strategy::StandaloneShi | Strategy::StandaloneNvd => Box::new(Standalone::new()),
            Strategy::Simba6Shi | Strategy::Simba6Nvd | Strategy::HetCross => Box::new(
                Scar::builder()
                    .nsplits(nsplits)
                    .search(SearchKind::Evolutionary(Default::default()))
                    .build(),
            ),
            _ => Box::new(Scar::builder().nsplits(nsplits).build()),
        }
    }

    /// The request this strategy issues for `scenario` under `profile`.
    pub fn request(
        self,
        scenario: &Scenario,
        profile: Profile,
        metric: OptMetric,
        budget: &SearchBudget,
    ) -> ScheduleRequest {
        ScheduleRequest::new(scenario.clone(), self.mcm(profile))
            .metric(metric)
            .budget(budget.clone())
    }

    /// Runs the strategy over `session`'s shared cost database.
    ///
    /// # Errors
    ///
    /// Propagates the scheduler's [`ScheduleError`](scar_core::ScheduleError).
    pub fn run(
        self,
        session: &Session,
        scenario: &Scenario,
        profile: Profile,
        metric: OptMetric,
        nsplits: usize,
        budget: &SearchBudget,
    ) -> Result<ScheduleResult, scar_core::ScheduleError> {
        self.scheduler(nsplits)
            .schedule(session, &self.request(scenario, profile, metric, budget))
    }
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A strategy's result with its label, the request that produced it, and
/// the answering scheduler's name *and configuration* (kept so sweeps can
/// be persisted as JSON artifacts — see [`crate::artifacts`] — and
/// replayed through the policy registry with the exact recorded knobs —
/// see [`crate::replay`]).
#[derive(Debug, Clone)]
pub struct LabeledResult {
    /// Strategy label.
    pub name: String,
    /// The [`Scheduler::name`] of the scheduler that answered.
    pub scheduler: String,
    /// The answering scheduler's structural configuration
    /// ([`Scheduler::config`]).
    pub scheduler_config: scar_core::SchedulerConfig,
    /// The request the strategy issued.
    pub request: ScheduleRequest,
    /// Scheduling outcome.
    pub result: ScheduleResult,
}

/// Runs a set of strategies on one scenario over a shared session,
/// skipping infeasible ones.
pub fn run_strategies(
    session: &Session,
    strategies: &[Strategy],
    scenario: &Scenario,
    profile: Profile,
    metric: &OptMetric,
    nsplits: usize,
    budget: &SearchBudget,
) -> Vec<LabeledResult> {
    strategies
        .iter()
        .filter_map(|s| {
            let request = s.request(scenario, profile, metric.clone(), budget);
            let scheduler = s.scheduler(nsplits);
            scheduler
                .schedule(session, &request)
                .ok()
                .map(|result| LabeledResult {
                    name: s.name().to_string(),
                    scheduler: scheduler.name().to_string(),
                    scheduler_config: scheduler.config(),
                    request,
                    result,
                })
        })
        .collect()
}

/// The experiment-wide default budget: a balance between coverage and the
/// wall-clock of regenerating all tables (tighten or loosen per binary).
pub fn default_budget() -> SearchBudget {
    SearchBudget::default()
}

/// A lighter budget for the heavyweight scans (Figure 7's 3×3 grid, the
/// ablations), trading candidate coverage for wall-clock.
pub fn quick_budget() -> SearchBudget {
    SearchBudget {
        max_root_perms: 24,
        max_paths_per_model: 8,
        max_placements_per_window: 400,
        max_candidates_per_window: 800,
        ..SearchBudget::default()
    }
}
