//! Persisting strategy sweeps as JSON schedule artifacts.
//!
//! Every experiment binary that wants its schedules on disk goes through
//! this one path: a [`LabeledResult`] sweep becomes a JSON array of
//! [`ScheduleArtifact`]s ([`scar_core`]'s shared request/result bundle —
//! the serving simulator emits the same shape for its live rounds), and
//! loads back with [`ScheduleArtifact::load_all`] without re-running any
//! search.

use crate::strategy::LabeledResult;
use scar_core::ScheduleArtifact;
use std::path::Path;

/// Converts a sweep into artifacts (label = strategy name; the scheduler
/// field records the answering [`Scheduler::name`] — a registry name —
/// and `scheduler_config` its structural knobs, so saved sweeps replay
/// through [`crate::replay`] under the exact recorded configuration).
///
/// [`Scheduler::name`]: scar_core::Scheduler::name
pub fn from_sweep(results: &[LabeledResult]) -> Vec<ScheduleArtifact> {
    results
        .iter()
        .map(|r| ScheduleArtifact {
            label: r.name.clone(),
            scheduler: r.scheduler.clone(),
            scheduler_config: r.scheduler_config.clone(),
            request: r.request.clone(),
            result: r.result.clone(),
        })
        .collect()
}

/// Writes a sweep to `path` as one pretty-printed JSON array of
/// [`ScheduleArtifact`]s.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_sweep(path: impl AsRef<Path>, results: &[LabeledResult]) -> std::io::Result<()> {
    ScheduleArtifact::save_all(path, &from_sweep(results))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{quick_budget, run_strategies, Strategy};
    use scar_core::{OptMetric, Session};
    use scar_mcm::templates::Profile;
    use scar_workloads::Scenario;

    #[test]
    fn sweep_roundtrips_through_json() {
        let session = Session::new();
        let sweep = run_strategies(
            &session,
            &[Strategy::StandaloneNvd, Strategy::HetSides],
            &Scenario::datacenter(1),
            Profile::Datacenter,
            &OptMetric::Edp,
            1,
            &quick_budget(),
        );
        assert_eq!(sweep.len(), 2);
        let path = std::env::temp_dir().join("scar_bench_artifacts_test.json");
        write_sweep(&path, &sweep).unwrap();
        let back = ScheduleArtifact::load_all(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back.len(), sweep.len());
        for (a, r) in back.iter().zip(&sweep) {
            assert_eq!(a.label, r.name);
            assert_eq!(a.scheduler, r.scheduler);
            assert_eq!(a.request, r.request);
            assert_eq!(a.result, r.result);
        }
        // the scheduler field is a registry name (what replay rebuilds),
        // not the MCM/strategy string
        assert_eq!(back[0].scheduler, "Standalone");
        assert_eq!(back[1].scheduler, "SCAR");
    }
}
