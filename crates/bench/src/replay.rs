//! Artifact replay: re-evaluate recorded schedules under today's model.
//!
//! Every bench binary and the serving simulator persist their schedules as
//! [`ScheduleArtifact`] JSON (request + scheduler name + result). Replay
//! closes the fidelity loop ROADMAP asks for: load a recorded sweep,
//! rebuild each artifact's scheduler from its recorded name (through the
//! serving [`PolicyRegistry`]), re-run the recorded request over a shared
//! [`Session`] — optionally warm-started from a cost-database snapshot, or
//! re-targeted at a different MCM — and diff the outcome against what was
//! recorded.
//!
//! Three uses fall out of one mechanism:
//!
//! * **Re-anchoring.** After a cost-model change, replaying a committed
//!   sweep shows exactly which strategies drifted and by how much — the
//!   tolerance-band comparison harness in miniature.
//! * **Regression.** Under an *unchanged* model, every diff must be zero:
//!   scheduling is deterministic, so a nonzero diff on identical inputs
//!   is a reproducibility bug (or an artifact recorded under a scheduler
//!   configuration the registry no longer reconstructs — reported, not
//!   hidden).
//! * **What-if.** Replaying a recorded workload against a different MCM
//!   re-answers the paper's strategy comparison for traffic that actually
//!   happened rather than a synthetic Table III scenario.

use scar_core::{EvalTotals, ScheduleArtifact, ScheduleError, Session};
use scar_mcm::McmConfig;
use scar_serve::{PolicyRegistry, ServeConfig};

/// One artifact's recorded-vs-replayed comparison.
#[derive(Debug, Clone)]
pub struct ReplayDiff {
    /// The artifact's label (strategy name, mix round, …).
    pub label: String,
    /// The scheduler name the artifact recorded (and the replay rebuilt).
    pub scheduler: String,
    /// Totals as recorded in the artifact.
    pub recorded: EvalTotals,
    /// Totals after re-evaluation, or the scheduling error if the request
    /// no longer schedules (e.g. a smaller replay MCM).
    pub replayed: Result<EvalTotals, ScheduleError>,
    /// Whether the replayed *schedule* (placement, not just totals) is
    /// identical to the recorded one.
    pub identical_schedule: bool,
}

impl ReplayDiff {
    /// Relative latency drift `(replayed - recorded) / recorded`, if the
    /// replay scheduled.
    pub fn latency_drift(&self) -> Option<f64> {
        self.replayed
            .as_ref()
            .ok()
            .map(|r| (r.latency_s - self.recorded.latency_s) / self.recorded.latency_s)
    }

    /// Relative EDP drift, if the replay scheduled.
    pub fn edp_drift(&self) -> Option<f64> {
        self.replayed
            .as_ref()
            .ok()
            .map(|r| (r.edp() - self.recorded.edp()) / self.recorded.edp())
    }

    /// True when the replay reproduced the recorded totals bit-for-bit.
    pub fn is_exact(&self) -> bool {
        matches!(&self.replayed, Ok(r) if *r == self.recorded) && self.identical_schedule
    }
}

impl std::fmt::Display for ReplayDiff {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.replayed {
            Ok(r) => write!(
                f,
                "{:<24} {:<12} lat {:>10.4}ms → {:>10.4}ms ({:+.3}%) | edp {:>10.4} → {:>10.4} ({:+.3}%){}",
                self.label,
                self.scheduler,
                self.recorded.latency_s * 1e3,
                r.latency_s * 1e3,
                self.latency_drift().unwrap_or(0.0) * 100.0,
                self.recorded.edp(),
                r.edp(),
                self.edp_drift().unwrap_or(0.0) * 100.0,
                if self.is_exact() { " [exact]" } else { "" },
            ),
            Err(e) => write!(
                f,
                "{:<24} {:<12} recorded lat {:.4}ms, replay failed: {e}",
                self.label,
                self.scheduler,
                self.recorded.latency_s * 1e3,
            ),
        }
    }
}

/// Options steering one replay pass.
#[derive(Default)]
pub struct ReplayOptions {
    /// Substitute MCM: every request is re-targeted at this package
    /// instead of the recorded one (the "what-if" mode). `None` replays
    /// on the recorded hardware.
    pub mcm_override: Option<McmConfig>,
    /// Serving configuration handed to the registry factories (SCAR's
    /// structural knobs). Defaults match `serve_sim`'s defaults.
    pub serve_config: ServeConfig,
}

/// Replays `artifacts` over `session`, rebuilding each scheduler by its
/// recorded name from `registry`. Artifacts whose scheduler name the
/// registry does not know are skipped with a note on stderr (a registry
/// gap is worth seeing, not worth aborting a sweep over).
pub fn replay_artifacts(
    session: &Session,
    artifacts: &[ScheduleArtifact],
    registry: &PolicyRegistry,
    options: &ReplayOptions,
) -> Vec<ReplayDiff> {
    artifacts
        .iter()
        .filter_map(|a| {
            let scheduler = match registry.build(&a.scheduler, &options.serve_config) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("replay: skipping {:?}: {e}", a.label);
                    return None;
                }
            };
            let mut request = a.request.clone();
            if let Some(mcm) = &options.mcm_override {
                request.mcm = mcm.clone();
            }
            let replayed = scheduler.schedule(session, &request);
            let identical_schedule = matches!(
                &replayed,
                Ok(r) if r.schedule() == a.result.schedule()
            );
            Some(ReplayDiff {
                label: a.label.clone(),
                scheduler: a.scheduler.clone(),
                recorded: a.result.total(),
                replayed: replayed.map(|r| r.total()),
                identical_schedule,
            })
        })
        .collect()
}

/// Loads an artifact file and replays it over a fresh or caller-provided
/// session. Convenience wrapper for the `replay` binary and tests.
///
/// # Errors
///
/// Returns the artifact loader's message on I/O or schema failure.
pub fn replay_file(
    session: &Session,
    path: impl AsRef<std::path::Path>,
    options: &ReplayOptions,
) -> Result<Vec<ReplayDiff>, String> {
    let artifacts = ScheduleArtifact::load_all(path)?;
    Ok(replay_artifacts(
        session,
        &artifacts,
        &PolicyRegistry::with_builtins(),
        options,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use scar_core::{ScheduleRequest, SearchBudget};
    use scar_maestro::Dataflow;
    use scar_mcm::templates::{het_sides_3x3, simba_3x3, Profile};
    use scar_workloads::Scenario;

    fn artifact() -> ScheduleArtifact {
        let session = Session::new();
        let request =
            ScheduleRequest::new(Scenario::datacenter(1), het_sides_3x3(Profile::Datacenter))
                .budget(SearchBudget {
                    max_root_perms: 8,
                    max_paths_per_model: 4,
                    max_placements_per_window: 60,
                    max_candidates_per_window: 120,
                    ..SearchBudget::default()
                });
        // record through the same registry reconstruction replay will use:
        // artifacts carry the scheduler *name*, so exact replay holds when
        // the registry rebuilds the same configuration
        let scar = PolicyRegistry::with_builtins()
            .build("SCAR", &ServeConfig::default())
            .unwrap();
        let result = scar.schedule(&session, &request).unwrap();
        ScheduleArtifact::new("Sc1", scar.name(), request, result)
    }

    /// Replaying under the unchanged cost model reproduces the recording
    /// exactly — determinism across processes is the whole point.
    #[test]
    fn unchanged_model_replays_exactly() {
        let a = artifact();
        let diffs = replay_artifacts(
            &Session::new(),
            &[a],
            &PolicyRegistry::with_builtins(),
            &ReplayOptions::default(),
        );
        assert_eq!(diffs.len(), 1);
        assert!(diffs[0].is_exact(), "{}", diffs[0]);
        assert_eq!(diffs[0].latency_drift(), Some(0.0));
        assert_eq!(diffs[0].edp_drift(), Some(0.0));
    }

    /// An MCM override re-evaluates the recorded request on new hardware:
    /// totals legitimately move, and the diff reports rather than hides it.
    #[test]
    fn mcm_override_retargets_the_request() {
        let a = artifact();
        let options = ReplayOptions {
            mcm_override: Some(simba_3x3(Profile::Datacenter, Dataflow::NvdlaLike)),
            ..Default::default()
        };
        let diffs = replay_artifacts(
            &Session::new(),
            &[a],
            &PolicyRegistry::with_builtins(),
            &options,
        );
        let replayed = diffs[0].replayed.as_ref().expect("still schedulable");
        assert_ne!(
            *replayed, diffs[0].recorded,
            "different package, different totals"
        );
        assert!(!diffs[0].is_exact());
        // the display renders both sides
        let text = diffs[0].to_string();
        assert!(text.contains("lat"), "{text}");
    }

    #[test]
    fn unknown_schedulers_are_skipped_not_fatal() {
        let mut a = artifact();
        a.scheduler = "from-the-future".to_string();
        let diffs = replay_artifacts(
            &Session::new(),
            &[a, artifact()],
            &PolicyRegistry::with_builtins(),
            &ReplayOptions::default(),
        );
        assert_eq!(diffs.len(), 1, "the known artifact still replays");
    }

    #[test]
    fn replay_file_roundtrips_through_disk() {
        let a = artifact();
        let path = std::env::temp_dir().join("scar_bench_replay_test.json");
        ScheduleArtifact::save_all(&path, std::slice::from_ref(&a)).unwrap();
        let diffs = replay_file(&Session::new(), &path, &ReplayOptions::default()).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(diffs.len(), 1);
        assert!(diffs[0].is_exact());
        assert!(replay_file(
            &Session::new(),
            "/nonexistent/replay.json",
            &ReplayOptions::default()
        )
        .is_err());
    }
}
