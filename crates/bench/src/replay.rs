//! Artifact replay: re-evaluate recorded schedules under today's model.
//!
//! Every bench binary and the serving simulator persist their schedules as
//! [`ScheduleArtifact`] JSON (request + scheduler name + result). Replay
//! closes the fidelity loop ROADMAP asks for: load a recorded sweep,
//! rebuild each artifact's scheduler from its recorded name (through the
//! serving [`PolicyRegistry`]), re-run the recorded request over a shared
//! [`Session`] — optionally warm-started from a cost-database snapshot, or
//! re-targeted at a different MCM — and diff the outcome against what was
//! recorded.
//!
//! Three uses fall out of one mechanism:
//!
//! * **Re-anchoring.** After a cost-model change, replaying a committed
//!   sweep shows exactly which strategies drifted and by how much — the
//!   tolerance-band comparison harness in miniature.
//! * **Regression.** Under an *unchanged* model, every diff must be zero:
//!   scheduling is deterministic, so a nonzero diff on identical inputs
//!   is a reproducibility bug (or an artifact recorded under a scheduler
//!   configuration the registry no longer reconstructs — reported, not
//!   hidden).
//! * **What-if.** Replaying a recorded workload against a different MCM
//!   re-answers the paper's strategy comparison for traffic that actually
//!   happened rather than a synthetic Table III scenario.

use scar_core::{EvalTotals, ScheduleArtifact, ScheduleError, Session};
use scar_mcm::{InterconnectSpec, McmConfig};
use scar_serve::{PolicyRegistry, ServeConfig};

/// One artifact's recorded-vs-replayed comparison.
#[derive(Debug, Clone)]
pub struct ReplayDiff {
    /// The artifact's label (strategy name, mix round, …).
    pub label: String,
    /// The scheduler name the artifact recorded (and the replay rebuilt).
    pub scheduler: String,
    /// Totals as recorded in the artifact.
    pub recorded: EvalTotals,
    /// Totals after re-evaluation, or the scheduling error if the request
    /// no longer schedules (e.g. a smaller replay MCM).
    pub replayed: Result<EvalTotals, ScheduleError>,
    /// Whether the replayed *schedule* (placement, not just totals) is
    /// identical to the recorded one.
    pub identical_schedule: bool,
    /// MAESTRO cost-model evaluations this artifact's replay performed
    /// (0 when the session's cost database — warm-started or filled by an
    /// earlier artifact in the sweep — already covered every layer).
    pub cost_evaluations: u64,
    /// Cost-database entries held by the session after this replay.
    pub cached_costs: usize,
}

/// Relative drift `(replayed - recorded) / recorded`, guarded for the
/// degenerate denominators a recorded artifact can legally carry:
/// bit-equal values are zero drift even when the recorded total is `0.0`
/// (previously `0/0 = NaN`, which [`ReplayDiff::within`] rejected against
/// *every* band — even [`ToleranceBand::exact`] on a bit-exact replay),
/// and a genuine departure from a zero recording is infinite drift
/// (outside every band) rather than NaN or a signless `±inf` ambiguity.
fn rel_drift(replayed: f64, recorded: f64) -> f64 {
    if replayed == recorded {
        0.0
    } else if recorded == 0.0 {
        f64::INFINITY
    } else {
        (replayed - recorded) / recorded
    }
}

impl ReplayDiff {
    /// Relative latency drift `(replayed - recorded) / recorded`, if the
    /// replay scheduled. A bit-exact replay is `0.0` drift even for a
    /// zero-latency recording; only a genuine departure from a zero
    /// recording yields `∞` (never `0/0 = NaN`, which every band passed).
    pub fn latency_drift(&self) -> Option<f64> {
        self.replayed
            .as_ref()
            .ok()
            .map(|r| rel_drift(r.latency_s, self.recorded.latency_s))
    }

    /// Relative EDP drift, if the replay scheduled. Guarded like
    /// [`ReplayDiff::latency_drift`] for zero-EDP recordings.
    pub fn edp_drift(&self) -> Option<f64> {
        self.replayed
            .as_ref()
            .ok()
            .map(|r| rel_drift(r.edp(), self.recorded.edp()))
    }

    /// True when the replay reproduced the recorded totals bit-for-bit.
    pub fn is_exact(&self) -> bool {
        matches!(&self.replayed, Ok(r) if *r == self.recorded) && self.identical_schedule
    }

    /// True when the replayed totals drifted no further than `band` allows
    /// in either direction (a failed replay is never within any band).
    /// This is the fidelity gate for *intentional* model changes: exact
    /// replay is the regression gate, ± bands are the re-anchoring gate.
    ///
    /// Bands judge **totals only** — deliberately. A changed cost model
    /// legitimately re-places work, so `identical_schedule` is *not*
    /// consulted here (unlike [`ReplayDiff::is_exact`], which requires
    /// it). A zero-width band is therefore still weaker than the
    /// exactness gate: use `is_exact` to catch placement-identity
    /// regressions under an unchanged model.
    pub fn within(&self, band: &ToleranceBand) -> bool {
        match (self.latency_drift(), self.edp_drift()) {
            (Some(lat), Some(edp)) => lat.abs() <= band.latency_frac && edp.abs() <= band.edp_frac,
            _ => false,
        }
    }
}

/// Symmetric relative tolerance on replay *totals* drift: a diff passes
/// when `|drift| ≤ frac` on each tracked metric (schedule placement
/// identity is never part of a band — see [`ReplayDiff::within`]).
/// `ToleranceBand::exact()` (zero width) admits only drift-free totals;
/// [`ToleranceBand::uniform`] builds the common equal-width band.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ToleranceBand {
    /// Maximum |relative latency drift| admitted.
    pub latency_frac: f64,
    /// Maximum |relative EDP drift| admitted.
    pub edp_frac: f64,
}

impl ToleranceBand {
    /// The same ± fraction on every metric (e.g. `uniform(0.05)` = ±5%).
    ///
    /// # Panics
    ///
    /// Panics if `frac` is negative or not finite.
    pub fn uniform(frac: f64) -> Self {
        assert!(
            frac >= 0.0 && frac.is_finite(),
            "tolerance must be a non-negative finite fraction"
        );
        Self {
            latency_frac: frac,
            edp_frac: frac,
        }
    }

    /// The zero-width band: only drift-free *totals* pass (still weaker
    /// than [`ReplayDiff::is_exact`], which also requires the identical
    /// placement).
    pub fn exact() -> Self {
        Self::uniform(0.0)
    }
}

/// The diffs of `diffs` that drift outside `band` (empty = the whole sweep
/// re-anchors within tolerance).
pub fn band_violations<'a>(diffs: &'a [ReplayDiff], band: &ToleranceBand) -> Vec<&'a ReplayDiff> {
    diffs.iter().filter(|d| !d.within(band)).collect()
}

impl std::fmt::Display for ReplayDiff {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.replayed {
            Ok(r) => write!(
                f,
                "{:<24} {:<12} lat {:>10.4}ms → {:>10.4}ms ({:+.3}%) | edp {:>10.4} → {:>10.4} ({:+.3}%) | {} cost evals (db {}){}",
                self.label,
                self.scheduler,
                self.recorded.latency_s * 1e3,
                r.latency_s * 1e3,
                self.latency_drift().unwrap_or(0.0) * 100.0,
                self.recorded.edp(),
                r.edp(),
                self.edp_drift().unwrap_or(0.0) * 100.0,
                self.cost_evaluations,
                self.cached_costs,
                if self.is_exact() { " [exact]" } else { "" },
            ),
            Err(e) => write!(
                f,
                "{:<24} {:<12} recorded lat {:.4}ms, replay failed: {e}",
                self.label,
                self.scheduler,
                self.recorded.latency_s * 1e3,
            ),
        }
    }
}

/// Options steering one replay pass.
#[derive(Default)]
pub struct ReplayOptions {
    /// Substitute MCM: every request is re-targeted at this package
    /// instead of the recorded one (the "what-if" mode). `None` replays
    /// on the recorded hardware.
    pub mcm_override: Option<McmConfig>,
    /// Substitute communication fabric: `Some(spec)` re-prices every
    /// request's package (recorded or overridden) under that
    /// [`InterconnectSpec`] — `Some(None)` strips any recorded fabric
    /// back to the plain Table II model. Like [`mcm_override`], this is a
    /// what-if: a wireless fabric re-prices the on-package NoP too, so
    /// schedules legitimately move. `None` (outer) keeps whatever the
    /// artifact recorded.
    ///
    /// [`mcm_override`]: ReplayOptions::mcm_override
    pub fabric_override: Option<Option<InterconnectSpec>>,
    /// Serving configuration handed to the registry factories (SCAR's
    /// structural knobs). Defaults match `serve_sim`'s defaults.
    pub serve_config: ServeConfig,
}

/// Replays `artifacts` over `session`, rebuilding each scheduler by its
/// recorded name from `registry`. An artifact that recorded the answering
/// scheduler's *configuration* ([`ScheduleArtifact::scheduler_config`])
/// is reconstructed with exactly those knobs — the recorded configuration
/// overrides `options.serve_config` field by field, so a sweep recorded
/// under `nsplits = 4` replays under `nsplits = 4` no matter what the
/// caller's default is. Artifacts without one (recorded before
/// configurations were persisted) fall back to `options.serve_config`.
/// Artifacts whose scheduler name the registry does not know are skipped
/// with a note on stderr (a registry gap is worth seeing, not worth
/// aborting a sweep over).
pub fn replay_artifacts(
    session: &Session,
    artifacts: &[ScheduleArtifact],
    registry: &PolicyRegistry,
    options: &ReplayOptions,
) -> Vec<ReplayDiff> {
    artifacts
        .iter()
        .filter_map(|a| {
            let mut cfg = options.serve_config.clone();
            if let Some(nsplits) = a.scheduler_config.nsplits {
                cfg.nsplits = nsplits;
            }
            if let Some(search) = &a.scheduler_config.search {
                cfg.search = search.clone();
            }
            let scheduler = match registry.build(&a.scheduler, &cfg) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("replay: skipping {:?}: {e}", a.label);
                    return None;
                }
            };
            let mut request = a.request.clone();
            if let Some(mcm) = &options.mcm_override {
                request.mcm = mcm.clone();
            }
            if let Some(fabric) = &options.fabric_override {
                request.mcm = request.mcm.with_interconnect(*fabric);
            }
            let evals_before = session.cost_evaluations();
            let replayed = scheduler.schedule(session, &request);
            let identical_schedule = matches!(
                &replayed,
                Ok(r) if r.schedule() == a.result.schedule()
            );
            Some(ReplayDiff {
                label: a.label.clone(),
                scheduler: a.scheduler.clone(),
                recorded: a.result.total(),
                replayed: replayed.map(|r| r.total()),
                identical_schedule,
                cost_evaluations: session.cost_evaluations() - evals_before,
                cached_costs: session.cached_costs(),
            })
        })
        .collect()
}

/// Loads an artifact file and replays it over a fresh or caller-provided
/// session. Convenience wrapper for the `replay` binary and tests.
///
/// # Errors
///
/// Returns the artifact loader's message on I/O or schema failure.
pub fn replay_file(
    session: &Session,
    path: impl AsRef<std::path::Path>,
    options: &ReplayOptions,
) -> Result<Vec<ReplayDiff>, String> {
    let artifacts = ScheduleArtifact::load_all(path)?;
    Ok(replay_artifacts(
        session,
        &artifacts,
        &PolicyRegistry::with_zoo(),
        options,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use scar_core::{ScheduleRequest, SearchBudget};
    use scar_maestro::Dataflow;
    use scar_mcm::templates::{het_sides_3x3, simba_3x3, Profile};
    use scar_workloads::Scenario;

    fn artifact() -> ScheduleArtifact {
        let session = Session::new();
        let request =
            ScheduleRequest::new(Scenario::datacenter(1), het_sides_3x3(Profile::Datacenter))
                .budget(SearchBudget {
                    max_root_perms: 8,
                    max_paths_per_model: 4,
                    max_placements_per_window: 60,
                    max_candidates_per_window: 120,
                    ..SearchBudget::default()
                });
        // record through the same registry reconstruction replay will use:
        // artifacts carry the scheduler *name*, so exact replay holds when
        // the registry rebuilds the same configuration
        let scar = PolicyRegistry::with_builtins()
            .build("SCAR", &ServeConfig::default())
            .unwrap();
        let result = scar.schedule(&session, &request).unwrap();
        ScheduleArtifact::new("Sc1", scar.name(), request, result)
    }

    /// Replaying under the unchanged cost model reproduces the recording
    /// exactly — determinism across processes is the whole point.
    #[test]
    fn unchanged_model_replays_exactly() {
        let a = artifact();
        let diffs = replay_artifacts(
            &Session::new(),
            &[a],
            &PolicyRegistry::with_builtins(),
            &ReplayOptions::default(),
        );
        assert_eq!(diffs.len(), 1);
        assert!(diffs[0].is_exact(), "{}", diffs[0]);
        assert_eq!(diffs[0].latency_drift(), Some(0.0));
        assert_eq!(diffs[0].edp_drift(), Some(0.0));
        // the fresh replay session had to evaluate costs, and the diff
        // surfaces both the work and the resulting database size
        assert!(diffs[0].cost_evaluations > 0);
        assert!(diffs[0].cached_costs > 0);
        let text = diffs[0].to_string();
        assert!(text.contains("cost evals"), "{text}");
    }

    /// An MCM override re-evaluates the recorded request on new hardware:
    /// totals legitimately move, and the diff reports rather than hides it.
    #[test]
    fn mcm_override_retargets_the_request() {
        let a = artifact();
        let options = ReplayOptions {
            mcm_override: Some(simba_3x3(Profile::Datacenter, Dataflow::NvdlaLike)),
            ..Default::default()
        };
        let diffs = replay_artifacts(
            &Session::new(),
            &[a],
            &PolicyRegistry::with_builtins(),
            &options,
        );
        let replayed = diffs[0].replayed.as_ref().expect("still schedulable");
        assert_ne!(
            *replayed, diffs[0].recorded,
            "different package, different totals"
        );
        assert!(!diffs[0].is_exact());
        // the display renders both sides
        let text = diffs[0].to_string();
        assert!(text.contains("lat"), "{text}");
    }

    /// A fabric override is a what-if like an MCM override: wireless
    /// re-prices every on-package transfer, so the recorded totals move —
    /// and stripping the fabric again restores exact replay.
    #[test]
    fn fabric_override_reprices_the_request() {
        let a = artifact();
        let options = ReplayOptions {
            fabric_override: Some(Some(InterconnectSpec::wireless())),
            ..Default::default()
        };
        let diffs = replay_artifacts(
            &Session::new(),
            std::slice::from_ref(&a),
            &PolicyRegistry::with_builtins(),
            &options,
        );
        let replayed = diffs[0].replayed.as_ref().expect("still schedulable");
        assert_ne!(
            *replayed, diffs[0].recorded,
            "wireless pricing must move the totals"
        );

        // explicit `none` on a fabric-less artifact is the identity
        let strip = ReplayOptions {
            fabric_override: Some(None),
            ..Default::default()
        };
        let diffs = replay_artifacts(
            &Session::new(),
            &[a],
            &PolicyRegistry::with_builtins(),
            &strip,
        );
        assert!(diffs[0].is_exact(), "{}", diffs[0]);
    }

    #[test]
    fn unknown_schedulers_are_skipped_not_fatal() {
        let mut a = artifact();
        a.scheduler = "from-the-future".to_string();
        let diffs = replay_artifacts(
            &Session::new(),
            &[a, artifact()],
            &PolicyRegistry::with_builtins(),
            &ReplayOptions::default(),
        );
        assert_eq!(diffs.len(), 1, "the known artifact still replays");
    }

    /// The fidelity tolerance bands (ROADMAP "Fidelity"): a drifted diff
    /// passes a band wide enough for its drift and violates a tighter one;
    /// failed replays pass no band; the zero band is the exactness gate.
    #[test]
    fn tolerance_bands_pass_and_violate() {
        let mk = |recorded: EvalTotals, replayed: EvalTotals| ReplayDiff {
            label: "band-test".into(),
            scheduler: "SCAR".into(),
            recorded,
            replayed: Ok(replayed),
            identical_schedule: false,
            cost_evaluations: 0,
            cached_costs: 0,
        };
        let base = EvalTotals {
            latency_s: 1.0,
            energy_j: 2.0,
        };
        // +2% latency, energy unchanged → EDP drifts +2% as well
        let drifted = mk(
            base,
            EvalTotals {
                latency_s: 1.02,
                energy_j: 2.0,
            },
        );
        assert!(drifted.within(&ToleranceBand::uniform(0.05)), "band pass");
        assert!(
            !drifted.within(&ToleranceBand::uniform(0.01)),
            "band violation"
        );
        assert!(!drifted.within(&ToleranceBand::exact()));
        // downward drift is judged by magnitude (± band)
        let faster = mk(
            base,
            EvalTotals {
                latency_s: 0.98,
                energy_j: 2.0,
            },
        );
        assert!(faster.within(&ToleranceBand::uniform(0.05)));
        assert!(!faster.within(&ToleranceBand::uniform(0.01)));
        // drift-free totals pass every band, including the zero band —
        // even though `mk` sets identical_schedule: false, because bands
        // deliberately judge totals only (see ReplayDiff::within)
        let exact = mk(base, base);
        assert!(exact.within(&ToleranceBand::exact()));
        assert!(!exact.is_exact(), "is_exact still demands the placement");
        // a failed replay passes no band
        let failed = ReplayDiff {
            label: "failed".into(),
            scheduler: "SCAR".into(),
            recorded: base,
            replayed: Err(ScheduleError::NoFeasibleSchedule { window: 0 }),
            identical_schedule: false,
            cost_evaluations: 0,
            cached_costs: 0,
        };
        assert!(!failed.within(&ToleranceBand::uniform(1.0)));
        // the sweep-level filter surfaces exactly the violators
        let diffs = vec![drifted, exact];
        let violations = band_violations(&diffs, &ToleranceBand::uniform(0.01));
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].label, "band-test");
        assert!(band_violations(&diffs, &ToleranceBand::uniform(0.05)).is_empty());
    }

    #[test]
    #[should_panic(expected = "non-negative finite")]
    fn negative_tolerance_panics() {
        let _ = ToleranceBand::uniform(-0.1);
    }

    /// Regression: a bit-exact replay of a zero-total artifact (empty
    /// scenario, degenerate recording) used to compute `0/0 = NaN` drift,
    /// and NaN fails every `|drift| ≤ frac` comparison — so `within()`
    /// rejected the replay against *every* band including `exact()`.
    /// Equal totals are zero drift regardless of the denominator, and a
    /// genuine departure from a zero recording is infinite drift (outside
    /// every band), not NaN.
    #[test]
    fn zero_total_artifacts_replay_within_exact_band() {
        let zero = EvalTotals {
            latency_s: 0.0,
            energy_j: 0.0,
        };
        let mk = |replayed: EvalTotals| ReplayDiff {
            label: "zero-total".into(),
            scheduler: "SCAR".into(),
            recorded: zero,
            replayed: Ok(replayed),
            identical_schedule: true,
            cost_evaluations: 0,
            cached_costs: 0,
        };
        let exact = mk(zero);
        assert_eq!(exact.latency_drift(), Some(0.0));
        assert_eq!(exact.edp_drift(), Some(0.0));
        assert!(exact.within(&ToleranceBand::exact()));
        assert!(exact.is_exact());
        // a real departure from a zero recording violates every band
        let drifted = mk(EvalTotals {
            latency_s: 0.5,
            energy_j: 1.0,
        });
        assert_eq!(drifted.latency_drift(), Some(f64::INFINITY));
        assert!(!drifted.within(&ToleranceBand::uniform(1e9)));
    }

    /// An artifact recorded under a *non-default* scheduler configuration
    /// replays exactly because the configuration is recorded and
    /// reconstructed — before this, replay rebuilt registry defaults and
    /// silently drifted (the `SCAR_NSPLITS` workaround).
    #[test]
    fn recorded_scheduler_config_wins_over_replay_defaults() {
        let session = Session::new();
        let request =
            ScheduleRequest::new(Scenario::datacenter(1), het_sides_3x3(Profile::Datacenter))
                .budget(SearchBudget {
                    max_root_perms: 8,
                    max_paths_per_model: 4,
                    max_placements_per_window: 60,
                    max_candidates_per_window: 120,
                    ..SearchBudget::default()
                });
        let nondefault = ServeConfig {
            nsplits: 2,
            ..ServeConfig::default()
        };
        let scar = PolicyRegistry::with_builtins()
            .build("SCAR", &nondefault)
            .unwrap();
        let result = scar.schedule(&session, &request).unwrap();
        let artifact = ScheduleArtifact::of("nsplits-2", scar.as_ref(), request, result);
        assert_eq!(artifact.scheduler_config.nsplits, Some(2));

        // replay under *default* options: the recorded config must win
        let diffs = replay_artifacts(
            &Session::new(),
            std::slice::from_ref(&artifact),
            &PolicyRegistry::with_builtins(),
            &ReplayOptions::default(),
        );
        assert_eq!(diffs.len(), 1);
        assert!(diffs[0].is_exact(), "{}", diffs[0]);

        // control: strip the recorded config and the default-reconstructed
        // scheduler (nsplits = 1) schedules differently
        let mut stripped = artifact;
        stripped.scheduler_config = Default::default();
        let control = replay_artifacts(
            &Session::new(),
            &[stripped],
            &PolicyRegistry::with_builtins(),
            &ReplayOptions::default(),
        );
        assert!(
            !control[0].identical_schedule,
            "a 2-split schedule must not reconstruct from 1-split defaults"
        );
    }

    #[test]
    fn replay_file_roundtrips_through_disk() {
        let a = artifact();
        let path = std::env::temp_dir().join("scar_bench_replay_test.json");
        ScheduleArtifact::save_all(&path, std::slice::from_ref(&a)).unwrap();
        let diffs = replay_file(&Session::new(), &path, &ReplayOptions::default()).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(diffs.len(), 1);
        assert!(diffs[0].is_exact());
        assert!(replay_file(
            &Session::new(),
            "/nonexistent/replay.json",
            &ReplayOptions::default()
        )
        .is_err());
    }
}
