//! # SCAR — Scheduling Multi-Model AI Workloads on Heterogeneous Multi-Chiplet Module Accelerators
//!
//! A from-scratch Rust reproduction of the SCAR system (MICRO 2024): a
//! scheduler for multi-model AI inference workloads on heterogeneous-dataflow
//! multi-chip-module (MCM) accelerators, together with every substrate it
//! depends on — the workload model, the MAESTRO-style intra-chiplet cost
//! model, and the MCM hardware/communication model — plus the layer the
//! paper motivates but never builds: a dynamic serving simulator.
//!
//! This crate is a facade: it re-exports the workspace crates under stable
//! module names.
//!
//! | Module | Crate | Contents |
//! |--------|-------|----------|
//! | [`hash`] | `scar-hash` | process-stable FNV-1a hashing for persisted fingerprints |
//! | [`workloads`] | `scar-workloads` | layers, models, scenarios, the scenario generator, JSON parsing |
//! | [`maestro`] | `scar-maestro` | intra-chiplet analytical cost model |
//! | [`mcm`] | `scar-mcm` | NoP topologies, MCM templates, communication model |
//! | [`core`] | `scar-core` | the SCAR scheduler and baseline schedulers |
//! | [`serve`] | `scar-serve` | traffic models, the serving loop, schedule caching, latency/deadline reports |
//! | [`telemetry`] | `scar-telemetry` | structured spans, metrics registry, Chrome trace_event export (see DESIGN.md §10) |
//!
//! # Quickstart: one offline schedule
//!
//! Every scheduler (SCAR and the paper baselines) implements
//! [`core::Scheduler`] and answers a [`core::ScheduleRequest`] over a
//! [`core::Session`] — the session owns the shared MAESTRO cost database,
//! so repeated calls never recompute per-layer costs:
//!
//! ```
//! use scar::core::{OptMetric, Scar, ScheduleRequest, Scheduler, Session};
//! use scar::mcm::templates;
//! use scar::workloads::Scenario;
//!
//! // Schedule the paper's Scenario 1 on a 3×3 heterogeneous Het-Sides MCM.
//! let session = Session::new();
//! let request = ScheduleRequest::new(
//!     Scenario::datacenter(1),
//!     templates::het_sides_3x3(templates::Profile::Datacenter),
//! )
//! .metric(OptMetric::Edp);
//! let result = Scar::with_defaults()
//!     .schedule(&session, &request)
//!     .expect("scheduling succeeds");
//! assert!(result.total().latency_s > 0.0);
//! ```
//!
//! # Serving: dynamic traffic instead of fixed scenarios
//!
//! The ten Table III scenarios are snapshots. [`serve`] turns them into
//! workloads: request streams with rates and deadlines, batched into live
//! scenarios, scheduled (with caching) as virtual time advances:
//!
//! ```
//! use scar::mcm::templates::{het_sides_3x3, Profile};
//! use scar::serve::{ServeSim, TrafficMix};
//!
//! let mcm = het_sides_3x3(Profile::ArVr);
//! let mut sim = ServeSim::with_defaults(&mcm);
//! let report = sim
//!     .run(&TrafficMix::arvr(7), 0.05)
//!     .expect("three tenants fit a 3x3");
//! assert!(report.cache.misses > 0); // cold start pays the search once
//! println!("{report}");
//! ```
//!
//! Beyond the built-in mixes, [`workloads::scenario::generate`] samples
//! unboundedly many synthetic scenarios from the zoo, so load tests are not
//! limited to the paper's ten.

#![forbid(unsafe_code)]

pub use scar_core as core;
pub use scar_hash as hash;
pub use scar_maestro as maestro;
pub use scar_mcm as mcm;
pub use scar_serve as serve;
pub use scar_telemetry as telemetry;
pub use scar_workloads as workloads;
