//! # SCAR — Scheduling Multi-Model AI Workloads on Heterogeneous Multi-Chiplet Module Accelerators
//!
//! A from-scratch Rust reproduction of the SCAR system (MICRO 2024): a
//! scheduler for multi-model AI inference workloads on heterogeneous-dataflow
//! multi-chip-module (MCM) accelerators, together with every substrate it
//! depends on — the workload model, the MAESTRO-style intra-chiplet cost
//! model, and the MCM hardware/communication model.
//!
//! This crate is a facade: it re-exports the workspace crates under stable
//! module names.
//!
//! | Module | Crate | Contents |
//! |--------|-------|----------|
//! | [`workloads`] | `scar-workloads` | layers, models, scenarios, JSON parsing |
//! | [`maestro`] | `scar-maestro` | intra-chiplet analytical cost model |
//! | [`mcm`] | `scar-mcm` | NoP topologies, MCM templates, communication model |
//! | [`core`] | `scar-core` | the SCAR scheduler and baseline schedulers |
//!
//! # Quickstart
//!
//! ```
//! use scar::core::{OptMetric, Scar};
//! use scar::mcm::templates;
//! use scar::workloads::Scenario;
//!
//! // Schedule the paper's Scenario 1 on a 3×3 heterogeneous Het-Sides MCM.
//! let scenario = Scenario::datacenter(1);
//! let mcm = templates::het_sides_3x3(templates::Profile::Datacenter);
//! let result = Scar::builder()
//!     .metric(OptMetric::Edp)
//!     .build()
//!     .schedule(&scenario, &mcm)
//!     .expect("scheduling succeeds");
//! assert!(result.total().latency_s > 0.0);
//! ```

#![forbid(unsafe_code)]

pub use scar_core as core;
pub use scar_maestro as maestro;
pub use scar_mcm as mcm;
pub use scar_workloads as workloads;
