//! Dynamic serving: drive SCAR with live AR/VR frame traffic and watch the
//! schedule cache absorb the search cost of recurring frame shapes.
//!
//! ```sh
//! cargo run --release --example serving
//! ```

use scar::mcm::templates::{het_sides_3x3, Profile};
use scar::serve::{ServeConfig, ServePolicy, ServeSim, TrafficMix};

fn main() {
    // XRBench-style social pipeline (paper Sc9): EyeCod gaze tracking at
    // 60 FPS, Hand-S/P at 45 FPS, Sp2Dense at 30 FPS — every frame due
    // within its frame period.
    let mix = TrafficMix::arvr(9);
    let mcm = het_sides_3x3(Profile::ArVr);
    println!(
        "serving {} ({:.0} req/s offered) on {}\n",
        mix.name,
        mix.offered_rps(),
        mcm
    );

    let mut sim = ServeSim::with_defaults(&mcm);
    let report = sim.run(&mix, 1.0).expect("three tenants fit a 3x3");
    println!("{report}");

    // the same pipeline at half frame rate: deadlines relax with the clock
    let relaxed = TrafficMix::arvr(9).throttled(0.5);
    let mut sim2 = ServeSim::with_defaults(&mcm);
    let r2 = sim2.run(&relaxed, 1.0).expect("lighter load still fits");
    println!(
        "at half rate: deadline misses {}/{} (was {}/{})\n",
        r2.deadline_misses, r2.deadline_bound, report.deadline_misses, report.deadline_bound
    );

    // policy comparison under identical traffic: every policy is a boxed
    // `Scheduler` behind the same serving loop
    for policy in [
        ServePolicy::Scar,
        ServePolicy::Standalone,
        ServePolicy::NnBaton,
    ] {
        let mut sim = ServeSim::with_policy(&mcm, policy.clone(), ServeConfig::default());
        let r = sim.run(&mix, 0.5).expect("every policy fits this mix");
        println!(
            "{:<12} throughput {:>6.1} req/s | p99 {:>8.2} ms | miss rate {:>5.1}% | energy {:.3} J",
            policy.name(),
            r.throughput_rps,
            r.latency.p99_s * 1e3,
            r.deadline_miss_rate() * 100.0,
            r.energy_j
        );
    }
}
