//! Datacenter multi-tenancy: the paper's heaviest standard scenario (Sc4:
//! GPT-L + BERT-L + U-Net + ResNet-50) across MCM strategies, reproducing
//! the §V-B comparison at example scale.
//!
//! ```sh
//! cargo run --release --example datacenter_multitenancy
//! ```

use scar::core::baselines;
use scar::core::{OptMetric, Parallelism, Scar};
use scar::maestro::Dataflow;
use scar::mcm::templates::{het_cb_3x3, het_sides_3x3, simba_3x3, Profile};
use scar::workloads::Scenario;

fn main() {
    let scenario = Scenario::datacenter(4);
    println!("workload: {scenario}\n");
    println!(
        "{:<24} {:>12} {:>12} {:>14}",
        "strategy", "latency (s)", "energy (J)", "EDP (J*s)"
    );

    // standalone baselines: one chiplet per model, homogeneous dataflow
    for df in [Dataflow::ShidiannaoLike, Dataflow::NvdlaLike] {
        let mcm = simba_3x3(Profile::Datacenter, df);
        let r = baselines::standalone(&scenario, &mcm, OptMetric::Edp, Parallelism::Auto)
            .expect("fits");
        let t = r.total();
        println!(
            "{:<24} {:>12.4} {:>12.4} {:>14.4}",
            r.strategy(),
            t.latency_s,
            t.energy_j,
            t.edp()
        );
    }

    // SCAR on homogeneous and heterogeneous packages
    let scar = Scar::builder().metric(OptMetric::Edp).build();
    for mcm in [
        simba_3x3(Profile::Datacenter, Dataflow::ShidiannaoLike),
        simba_3x3(Profile::Datacenter, Dataflow::NvdlaLike),
        het_cb_3x3(Profile::Datacenter),
        het_sides_3x3(Profile::Datacenter),
    ] {
        let r = scar.schedule(&scenario, &mcm).expect("fits");
        let t = r.total();
        println!(
            "{:<24} {:>12.4} {:>12.4} {:>14.4}",
            r.strategy(),
            t.latency_s,
            t.energy_j,
            t.edp()
        );
    }

    println!("\nexpected shape: NVDLA-based strategies dominate the LM-heavy work;");
    println!("heterogeneous packages close the gap by offloading U-Net/ResNet to");
    println!("Shidiannao-like chiplets (compare the energy column).");
}
