//! Datacenter multi-tenancy: the paper's heaviest standard scenario (Sc4:
//! GPT-L + BERT-L + U-Net + ResNet-50) across MCM strategies, reproducing
//! the §V-B comparison at example scale.
//!
//! Every strategy — the Standalone baseline and SCAR on four packages —
//! runs through the same `Scheduler` trait over one `Session`, so the
//! MAESTRO cost database is built once for the whole comparison.
//!
//! ```sh
//! cargo run --release --example datacenter_multitenancy
//! ```

use scar::core::baselines::Standalone;
use scar::core::{OptMetric, Scar, ScheduleRequest, Scheduler, Session};
use scar::maestro::Dataflow;
use scar::mcm::templates::{het_cb_3x3, het_sides_3x3, simba_3x3, Profile};
use scar::workloads::Scenario;

fn main() {
    let scenario = Scenario::datacenter(4);
    println!("workload: {scenario}\n");
    println!(
        "{:<24} {:>12} {:>12} {:>14}",
        "strategy", "latency (s)", "energy (J)", "EDP (J*s)"
    );

    let session = Session::new();
    let request = |mcm| ScheduleRequest::new(scenario.clone(), mcm).metric(OptMetric::Edp);

    // standalone baselines: one chiplet per model, homogeneous dataflow
    for df in [Dataflow::ShidiannaoLike, Dataflow::NvdlaLike] {
        let r = Standalone::new()
            .schedule(&session, &request(simba_3x3(Profile::Datacenter, df)))
            .expect("fits");
        let t = r.total();
        println!(
            "{:<24} {:>12.4} {:>12.4} {:>14.4}",
            r.strategy(),
            t.latency_s,
            t.energy_j,
            t.edp()
        );
    }

    // SCAR on homogeneous and heterogeneous packages
    let scar = Scar::with_defaults();
    for mcm in [
        simba_3x3(Profile::Datacenter, Dataflow::ShidiannaoLike),
        simba_3x3(Profile::Datacenter, Dataflow::NvdlaLike),
        het_cb_3x3(Profile::Datacenter),
        het_sides_3x3(Profile::Datacenter),
    ] {
        let r = scar.schedule(&session, &request(mcm)).expect("fits");
        let t = r.total();
        println!(
            "{:<24} {:>12.4} {:>12.4} {:>14.4}",
            r.strategy(),
            t.latency_s,
            t.energy_j,
            t.edp()
        );
    }

    println!(
        "\ncost database: {} layer entries shared across all 6 strategies",
        session.cached_costs()
    );
    println!("expected shape: NVDLA-based strategies dominate the LM-heavy work;");
    println!("heterogeneous packages close the gap by offloading U-Net/ResNet to");
    println!("Shidiannao-like chiplets (compare the energy column).");
}
