//! Quickstart: schedule a two-model workload on a heterogeneous 3×3 MCM
//! through the `Scheduler` trait and print what SCAR decided.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use scar::core::baselines::{NnBaton, Standalone};
use scar::core::{OptMetric, Scar, ScheduleRequest, Scheduler, Session};
use scar::mcm::templates::{het_sides_3x3, Profile};
use scar::workloads::Scenario;

fn main() {
    // Table III scenario 1: GPT-L (batch 1) + BERT-L (batch 3),
    // on a 3×3 package: NVDLA-like side columns, Shidiannao-like middle.
    let scenario = Scenario::datacenter(1);
    let mcm = het_sides_3x3(Profile::Datacenter);
    println!("scheduling {scenario}\n        on {mcm}\n");

    // a session owns the shared MAESTRO cost database: every schedule
    // below reuses the same memoized per-layer costs
    let session = Session::new();
    let request = ScheduleRequest::new(scenario, mcm.clone()).metric(OptMetric::Edp); // the paper's default target

    let scar = Scar::builder()
        .nsplits(4) // up to 5 time windows
        .build();
    let result = scar
        .schedule(&session, &request)
        .expect("scenario fits the package");

    let totals = result.total();
    println!("end-to-end latency : {:.3} ms", totals.latency_s * 1e3);
    println!("total energy       : {:.3} mJ", totals.energy_j * 1e3);
    println!("energy-delay prod. : {:.3e} J*s", totals.edp());
    println!();

    for w in result.windows() {
        println!("window {} (latency {:.3} ms):", w.index, w.latency_s * 1e3);
        for m in &w.models {
            let path: Vec<String> = m
                .assignments
                .iter()
                .map(|(seg, chiplet)| {
                    format!(
                        "chiplet {} ({}) layers {}..{}",
                        chiplet,
                        mcm.chiplet(*chiplet).dataflow.short_name(),
                        seg.start,
                        seg.end
                    )
                })
                .collect();
            println!(
                "    {:8} mini-batch {:>2} : {}",
                m.model_name,
                m.mini_batch,
                path.join(" -> ")
            );
        }
    }
    println!(
        "\nthe search evaluated {} candidate schedules; Pareto front has {} points",
        result.candidates().len(),
        result.pareto_front().len()
    );

    // the paper's baselines answer the same request through the same trait
    println!("\nbaselines on the identical request (shared cost database):");
    let schedulers: [&dyn Scheduler; 2] = [&Standalone, &NnBaton { start: 0 }];
    for s in schedulers {
        let r = s.schedule(&session, &request).expect("baselines fit too");
        println!(
            "    {:10} latency {:.3} ms, EDP {:.3e} J*s",
            s.name(),
            r.total().latency_s * 1e3,
            r.total().edp()
        );
    }
    println!(
        "\nsession cost database: {} memoized layer entries after 3 schedulers",
        session.cached_costs()
    );
}
