//! Quickstart: schedule a two-model workload on a heterogeneous 3×3 MCM
//! and print what SCAR decided.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use scar::core::{OptMetric, Scar};
use scar::mcm::templates::{het_sides_3x3, Profile};
use scar::workloads::Scenario;

fn main() {
    // Table III scenario 1: GPT-L (batch 1) + BERT-L (batch 3).
    let scenario = Scenario::datacenter(1);
    // A 3×3 package: NVDLA-like side columns, Shidiannao-like middle.
    let mcm = het_sides_3x3(Profile::Datacenter);

    println!("scheduling {scenario}\n        on {mcm}\n");

    let result = Scar::builder()
        .metric(OptMetric::Edp) // the paper's default target
        .nsplits(4) // up to 5 time windows
        .build()
        .schedule(&scenario, &mcm)
        .expect("scenario fits the package");

    let totals = result.total();
    println!("end-to-end latency : {:.3} ms", totals.latency_s * 1e3);
    println!("total energy       : {:.3} mJ", totals.energy_j * 1e3);
    println!("energy-delay prod. : {:.3e} J*s", totals.edp());
    println!();

    for w in result.windows() {
        println!("window {} (latency {:.3} ms):", w.index, w.latency_s * 1e3);
        for m in &w.models {
            let path: Vec<String> = m
                .assignments
                .iter()
                .map(|(seg, chiplet)| {
                    format!(
                        "chiplet {} ({}) layers {}..{}",
                        chiplet,
                        mcm.chiplet(*chiplet).dataflow.short_name(),
                        seg.start,
                        seg.end
                    )
                })
                .collect();
            println!(
                "    {:8} mini-batch {:>2} : {}",
                m.model_name,
                m.mini_batch,
                path.join(" -> ")
            );
        }
    }
    println!(
        "\nthe search evaluated {} candidate schedules; Pareto front has {} points",
        result.candidates().len(),
        result.pareto_front().len()
    );
}
