//! AR/VR pipeline: build a *custom* XR scenario from zoo models (a social
//! application adding speech recognition to XRBench's "Social" mix) and
//! schedule it on the 256-PE AR/VR package with different optimization
//! targets.
//!
//! ```sh
//! cargo run --release --example arvr_pipeline
//! ```

use scar::core::{OptMetric, Scar, ScheduleRequest, Scheduler, Session};
use scar::mcm::templates::{het_sides_3x3, Profile};
use scar::workloads::{zoo, Scenario, ScenarioModel, UseCase};

fn main() {
    // XRBench-style custom scenario: gaze + hands + depth + speech
    let scenario = Scenario::new(
        "Social+Voice",
        UseCase::ArVr,
        vec![
            ScenarioModel {
                model: zoo::eyecod(),
                batch: 60,
            },
            ScenarioModel {
                model: zoo::hand_sp(),
                batch: 30,
            },
            ScenarioModel {
                model: zoo::sp2dense(),
                batch: 30,
            },
            ScenarioModel {
                model: zoo::emformer(),
                batch: 3,
            },
        ],
    );
    let mcm = het_sides_3x3(Profile::ArVr);
    println!("workload: {scenario}");
    println!("hardware: {mcm}\n");

    // one session across all three searches: the per-layer costs depend on
    // neither the metric nor the schedule, so they are computed exactly once
    let session = Session::new();
    let scar = Scar::with_defaults();
    let request = ScheduleRequest::new(scenario.clone(), mcm.clone());

    for metric in [OptMetric::Latency, OptMetric::Energy, OptMetric::Edp] {
        let r = scar
            .schedule(&session, &request.clone().metric(metric.clone()))
            .expect("fits");
        let t = r.total();
        println!(
            "{:>7} search: latency {:>8.4} s | energy {:>8.4} J | EDP {:>9.5} J*s | {} windows",
            metric.label(),
            t.latency_s,
            t.energy_j,
            t.edp(),
            r.windows().len()
        );
    }

    println!("\nper-window anatomy of the EDP schedule:");
    let r = scar
        .schedule(&session, &request.clone().metric(OptMetric::Edp))
        .expect("fits");
    for w in r.windows() {
        let models: Vec<String> = w
            .models
            .iter()
            .map(|m| format!("{}({} segs)", m.model_name, m.assignments.len()))
            .collect();
        println!(
            "    W{} lat {:>7.2} ms: {}",
            w.index,
            w.latency_s * 1e3,
            models.join(", ")
        );
    }
}
