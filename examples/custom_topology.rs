//! Custom hardware and workload description files: assemble an MCM with a
//! user-defined NoP topology (a ring), author a custom two-model workload,
//! round-trip both through the JSON description-file interface (the paper's
//! Figure 4 inputs), and schedule.
//!
//! ```sh
//! cargo run --release --example custom_topology
//! ```

use scar::core::{OptMetric, Scar, ScheduleRequest, Scheduler, Session};
use scar::maestro::{ChipletConfig, Dataflow};
use scar::mcm::parse as mcm_parse;
use scar::mcm::{McmConfig, NopTopology};
use scar::workloads::parse as wl_parse;
use scar::workloads::{ModelBuilder, Scenario, ScenarioModel, UseCase};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- hardware: a 6-chiplet ring, alternating dataflows ---
    let n = 6usize;
    let mut adj = vec![vec![false; n]; n];
    for i in 0..n {
        adj[i][(i + 1) % n] = true;
        adj[(i + 1) % n][i] = true;
    }
    let topology = NopTopology::from_adjacency(adj)?;
    let chiplets = (0..n)
        .map(|i| {
            ChipletConfig::datacenter(if i % 2 == 0 {
                Dataflow::NvdlaLike
            } else {
                Dataflow::ShidiannaoLike
            })
        })
        .collect();
    let mcm = McmConfig::new("Het-Ring", chiplets, topology, vec![0, 3]);

    // description-file round trip (what a deployment would version-control)
    let mcm_json = mcm_parse::mcm_to_json(&mcm)?;
    let mcm = mcm_parse::mcm_from_json(&mcm_json)?;
    println!(
        "hardware description ({} bytes of JSON): {mcm}",
        mcm_json.len()
    );

    // --- workload: a detector + a tiny LM, defined from scratch ---
    let detector = ModelBuilder::new("TinyDet")
        .conv("stem", 128, 3, 32, 3, 2)
        .conv("c2", 64, 32, 64, 3, 2)
        .conv("c3", 32, 64, 128, 3, 2)
        .conv("head", 16, 128, 32, 1, 1)
        .build();
    let lm = ModelBuilder::new("TinyLM")
        .gemm("qkv", 768, 256, 64)
        .matmul("attn", 64, 64, 64, 4)
        .gemm("proj", 256, 256, 64)
        .gemm("ffn_up", 1024, 256, 64)
        .gemm("ffn_down", 256, 1024, 64)
        .build();
    let scenario = Scenario::new(
        "custom-edge",
        UseCase::Datacenter,
        vec![
            ScenarioModel {
                model: detector,
                batch: 8,
            },
            ScenarioModel {
                model: lm,
                batch: 2,
            },
        ],
    );
    let sc_json = wl_parse::scenario_to_json(&scenario)?;
    let scenario = wl_parse::scenario_from_json(&sc_json)?;
    println!(
        "workload description ({} bytes of JSON): {scenario}\n",
        sc_json.len()
    );

    // --- schedule ---
    let session = Session::new();
    let request = ScheduleRequest::new(scenario, mcm.clone()).metric(OptMetric::Edp);
    let r = Scar::builder()
        .nsplits(2)
        .build()
        .schedule(&session, &request)?;
    let t = r.total();
    println!(
        "EDP schedule: latency {:.3} ms, energy {:.3} mJ, EDP {:.3e} J*s",
        t.latency_s * 1e3,
        t.energy_j * 1e3,
        t.edp()
    );
    for w in r.windows() {
        for m in &w.models {
            let hops: Vec<String> = m
                .assignments
                .iter()
                .map(|(_, c)| format!("{}:{}", c, mcm.chiplet(*c).dataflow.short_name()))
                .collect();
            println!(
                "    W{} {:8} -> {}",
                w.index,
                m.model_name,
                hops.join(" -> ")
            );
        }
    }
    println!("\nSCAR generalizes to any adjacency-matrix topology (paper §V-E).");
    Ok(())
}
