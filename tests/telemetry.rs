//! Telemetry neutrality and trace-structure tests: tracing must observe
//! the serving loop without perturbing it.
//!
//! The contracts locked down here:
//!
//! * a traced run's [`ServeReport`] is identical — `PartialEq` and
//!   rendered bytes — to an untraced run's,
//! * tracing does not interact with evaluation parallelism: Serial and
//!   `Fixed(4)` traced runs report identically,
//! * the disabled handle is a true no-op (zero spans, events, and
//!   counter updates recorded),
//! * an exported trace parses as Chrome `trace_event` JSON, carries the
//!   required phase spans, and attributes ≥95% of the root wall time.

use scar::core::Parallelism;
use scar::mcm::templates::{het_sides_3x3, Profile};
use scar::serve::{ServeConfig, ServeReport, ServeSim, TrafficMix, TrafficShape};
use scar::telemetry::{analyze_trace, Telemetry};

fn run_with(telemetry: Telemetry, parallelism: Parallelism) -> ServeReport {
    let mcm = het_sides_3x3(Profile::ArVr);
    let cfg = ServeConfig {
        telemetry,
        parallelism,
        preemption: true,
        nsplits: 2,
        ..ServeConfig::default()
    };
    let mut sim = ServeSim::new(&mcm, cfg);
    let mix = TrafficMix::arvr(41).reshaped(TrafficShape::Burst);
    sim.run(&mix, 0.4).expect("mix fits the 3x3")
}

/// Tracing on vs off: the report (struct and rendered bytes) must not
/// move by a single bit — telemetry is observational only.
#[test]
fn traced_report_is_byte_identical_to_untraced() {
    let untraced = run_with(Telemetry::disabled(), Parallelism::Auto);
    let traced = run_with(Telemetry::enabled(true, true), Parallelism::Auto);
    assert_eq!(untraced, traced);
    assert_eq!(untraced.to_string(), traced.to_string());
}

/// Tracing must not couple to the worker-pool size: spans are recorded
/// on the coordinating thread only, so Serial and Fixed(4) traced runs
/// stay bit-identical (the pre-telemetry determinism contract).
#[test]
fn traced_serial_and_fixed_parallelism_agree() {
    let serial = run_with(Telemetry::enabled(true, true), Parallelism::Serial);
    let fixed = run_with(Telemetry::enabled(true, true), Parallelism::Fixed(4));
    assert_eq!(serial, fixed);
    assert_eq!(serial.to_string(), fixed.to_string());
}

/// The disabled handle records nothing anywhere — the zero-cost claim,
/// asserted through the recorder counters.
#[test]
fn disabled_sink_records_nothing() {
    let tel = Telemetry::disabled();
    let report = run_with(tel.clone(), Parallelism::Auto);
    assert!(report.windows_scheduled > 0, "the run did real work");
    assert_eq!(tel.spans_recorded(), 0);
    assert_eq!(tel.events_recorded(), 0);
    assert_eq!(tel.counter_updates(), 0);
    assert!(!tel.is_enabled());
    assert_eq!(tel.trace_json(), None);
    assert_eq!(tel.metrics_json(), None);
}

/// An enabled sink on the same run does record — the control for the
/// no-op test above, and the metrics mirror of the report's counters.
#[test]
fn enabled_sink_mirrors_report_counters() {
    let tel = Telemetry::enabled(false, true);
    let report = run_with(tel.clone(), Parallelism::Auto);
    assert!(tel.spans_recorded() > 0);
    assert!(tel.counter_updates() > 0);
    assert_eq!(
        tel.counter("serve.windows_scheduled"),
        report.windows_scheduled as u64
    );
    assert_eq!(tel.counter("serve.completed"), report.completed as u64);
    assert_eq!(tel.counter("serve.cache.hits"), report.cache.hits);
    assert_eq!(tel.counter("serve.full_searches"), report.full_searches);
    assert_eq!(
        tel.counter("maestro.cost_evaluations"),
        report.cost_evaluations
    );
}

/// The exported timeline is valid Chrome trace_event JSON with every
/// serving phase present, and ≥95% of the `serve.run` root wall time is
/// attributed to named phases — the acceptance bar for the trace being
/// useful, not decorative.
#[test]
fn trace_covers_the_serving_phases() {
    let tel = Telemetry::enabled(true, false);
    let report = run_with(tel.clone(), Parallelism::Auto);
    assert!(report.preemptions > 0, "burst mix must splice");
    let json = tel.trace_json().expect("tracing is on");
    let doc = serde::parse_value(&json).expect("trace is valid JSON");
    let analysis = analyze_trace(&doc, "serve.run").expect("trace analyzes");
    assert_eq!(analysis.roots, 1);
    assert!(
        analysis.missing_phases().is_empty(),
        "missing phases: {:?}",
        analysis.missing_phases()
    );
    assert!(
        analysis.coverage() >= 0.95,
        "only {:.1}% of root wall attributed",
        analysis.coverage() * 100.0
    );
}
