//! Serving-layer invariants: seeded sweeps locking down mid-window
//! preemption, admission control, and the burst/diurnal traffic shapes.
//!
//! The search engine has had determinism guarantees since the
//! generation/evaluation split (`tests/determinism.rs`); this suite gives
//! the *serving* layer the same treatment:
//!
//! * **Conservation of arrivals** — preemption splices rounds apart and
//!   resplices remainders, admission rejects at the front door; through
//!   all of it, every offered request is accounted exactly once:
//!   `offered == completed + rejected`, per stream and in total.
//! * **Parallelism-independence** — splice-then-reschedule decisions
//!   depend only on evaluated schedules and arrival times, so `Serial`
//!   and `Fixed(4)` candidate evaluation produce bit-identical reports
//!   even under preemption.
//! * **No-regression** — the accept-all/no-preemption defaults reproduce
//!   the pre-overload serving loop: nothing rejected, nothing spliced,
//!   and a default-configured simulator reports byte-for-byte what an
//!   explicitly accept-all one does on the existing mixes.
//! * **Traffic envelopes** — the burst and diurnal generators are
//!   deterministic per seed, distinct across seeds, in-horizon, and
//!   respect their configured rate envelopes.

use scar::core::{ScheduleError, ScheduleRequest, ScheduleResult, Scheduler, Session};
use scar::mcm::templates::{het_sides_3x3, Profile};
use scar::serve::{AdmissionKind, ServeConfig, ServeSim, TrafficMix, TrafficShape};
use scar::workloads::UseCase;

fn arvr_mcm() -> scar::mcm::McmConfig {
    het_sides_3x3(Profile::ArVr)
}

/// A config that actually exercises the splice machinery: preemption on,
/// multi-window rounds (nsplits = 2).
fn preempt_cfg() -> ServeConfig {
    ServeConfig {
        preemption: true,
        nsplits: 2,
        ..ServeConfig::default()
    }
}

/// (a) Conservation of arrivals under preemption and admission, swept
/// over seeds and policies: no request is ever lost or duplicated, no
/// matter how many rounds are spliced apart or arrivals shed.
#[test]
fn preemption_and_admission_conserve_requests() {
    let mcm = arvr_mcm();
    let mut preemptions_total = 0u64;
    let mut rejections_total = 0usize;
    for seed in [1u64, 7, 42] {
        let mix = TrafficMix::arvr(seed).reshaped(TrafficShape::Burst);
        let offered = mix.arrivals(0.2).len();
        for admission in [
            AdmissionKind::AcceptAll,
            AdmissionKind::DeadlineFeasible,
            AdmissionKind::LoadShed { max_queue: 2 },
        ] {
            let cfg = ServeConfig {
                admission,
                ..preempt_cfg()
            };
            let mut sim = ServeSim::new(&mcm, cfg);
            let r = sim.run(&mix, 0.2).unwrap();
            let label = format!("seed {seed}, {admission:?}");
            assert_eq!(r.offered, offered, "{label}");
            assert_eq!(
                r.completed + r.rejected,
                r.offered,
                "{label}: conservation of arrivals"
            );
            assert_eq!(
                r.per_stream
                    .iter()
                    .map(|s| s.completed + s.rejected)
                    .sum::<usize>(),
                r.offered,
                "{label}: per-stream conservation"
            );
            assert_eq!(r.latency.count, r.completed, "{label}: one latency each");
            preemptions_total += r.preemptions;
            rejections_total += r.rejected;
        }
    }
    // the sweep must actually exercise both mechanisms, or it proves nothing
    assert!(preemptions_total > 0, "no sweep case ever spliced");
    assert!(rejections_total > 0, "no sweep case ever rejected");
}

/// (b) Splice-then-reschedule is bit-identical across candidate-evaluation
/// parallelism: the engine merges in generation order, and splice points
/// are pure functions of (schedule, arrivals).
#[test]
fn preemptive_serving_is_parallelism_independent() {
    use scar::core::Parallelism;
    let mcm = arvr_mcm();
    let mix = TrafficMix::arvr(9).reshaped(TrafficShape::Burst);
    let run = |parallelism: Parallelism| {
        let cfg = ServeConfig {
            parallelism,
            ..preempt_cfg()
        };
        ServeSim::new(&mcm, cfg).run(&mix, 0.2).unwrap()
    };
    let serial = run(Parallelism::Serial);
    assert!(
        serial.preemptions > 0,
        "the mix must splice to test anything"
    );
    let fixed4 = run(Parallelism::Fixed(4));
    assert_eq!(serial, fixed4, "Serial vs Fixed(4) under preemption");
}

/// (c) The no-regression gate: the default configuration *is* the
/// pre-overload serving loop. Accept-all admission with preemption off is
/// the default, rejects nothing, splices nothing, and a default-config
/// simulator reproduces an explicitly-configured one byte-for-byte on
/// both existing mixes.
#[test]
fn accept_all_defaults_reproduce_the_pre_overload_loop() {
    let default = ServeConfig::default();
    assert_eq!(default.admission, AdmissionKind::AcceptAll);
    assert!(!default.preemption, "preemption must be opt-in");

    for (profile, mix, horizon) in [
        (Profile::ArVr, TrafficMix::arvr(5), 0.15),
        (Profile::Datacenter, TrafficMix::datacenter(5), 0.15),
    ] {
        let mcm = het_sides_3x3(profile);
        let mut plain = ServeSim::with_defaults(&mcm);
        let r = plain.run(&mix, horizon).unwrap();
        assert_eq!(r.rejected, 0, "{}: accept-all rejects nothing", mix.name);
        assert_eq!(r.preemptions, 0, "{}: nothing splices", mix.name);
        assert_eq!(
            r.completed, r.offered,
            "{}: every offered request completes",
            mix.name
        );
        // explicit accept-all + preemption off ≡ the default, bit for bit
        let explicit_cfg = ServeConfig {
            admission: AdmissionKind::AcceptAll,
            preemption: false,
            ..ServeConfig::default()
        };
        let mut explicit = ServeSim::new(&mcm, explicit_cfg);
        let e = explicit.run(&mix, horizon).unwrap();
        assert_eq!(r, e, "{}: defaults must be byte-identical", mix.name);
    }
}

/// The serving loop routes post-splice rounds through the
/// `Scheduler::preempt` trait entry (not plain `schedule`): a wrapper
/// scheduler observes exactly one preempt call per counted splice (the
/// preempt-result cache can only elide *repeat* splices, and every splice
/// in this mix is distinct), and delegating to the inner scheduler's
/// preempt keeps the wrapper bit-identical to SCAR's splice-aware
/// fast path.
#[test]
fn splices_route_through_the_preempt_trait_entry() {
    use std::cell::Cell;
    use std::rc::Rc;

    struct CountingScar {
        inner: scar::core::Scar,
        preempts: Rc<Cell<u64>>,
    }
    impl Scheduler for CountingScar {
        fn name(&self) -> &str {
            // the inner name keeps fingerprints/cache behavior identical
            self.inner.name()
        }
        fn schedule(
            &self,
            session: &Session,
            request: &ScheduleRequest,
        ) -> Result<ScheduleResult, ScheduleError> {
            self.inner.schedule(session, request)
        }
        fn supports_reschedule(&self) -> bool {
            self.inner.supports_reschedule()
        }
        fn reschedule(
            &self,
            session: &Session,
            request: &ScheduleRequest,
            seed: &scar::core::ScheduleInstance,
        ) -> Option<ScheduleResult> {
            self.inner.reschedule(session, request, seed)
        }
        fn preempt(
            &self,
            session: &Session,
            request: &ScheduleRequest,
            in_flight: &scar::core::ScheduleInstance,
        ) -> Result<ScheduleResult, ScheduleError> {
            self.preempts.set(self.preempts.get() + 1);
            self.inner.preempt(session, request, in_flight)
        }
        fn fingerprint_config(&self, state: &mut dyn std::hash::Hasher) {
            self.inner.fingerprint_config(state);
        }
    }

    let mcm = arvr_mcm();
    let mix = TrafficMix::arvr(7).reshaped(TrafficShape::Burst);
    let preempts = Rc::new(Cell::new(0u64));
    let wrapper = CountingScar {
        inner: scar::core::Scar::builder().nsplits(2).build(),
        preempts: Rc::clone(&preempts),
    };
    let mut sim = ServeSim::with_scheduler(&mcm, Box::new(wrapper), preempt_cfg());
    let report = sim.run(&mix, 0.2).unwrap();
    assert!(report.preemptions > 0, "the mix must splice");
    assert_eq!(
        preempts.get(),
        report.preemptions,
        "every counted splice issues exactly one Scheduler::preempt call"
    );

    // and the wrapper (whose preempt delegates to SCAR's) serves
    // bit-identically to bare SCAR under the same config
    let mut bare = ServeSim::new(&mcm, preempt_cfg());
    let b = bare.run(&mix, 0.2).unwrap();
    assert_eq!(report, b, "delegating wrapper ≡ bare SCAR");
}

/// (d) Burst generators: deterministic per seed, distinct across seeds,
/// in-horizon, and inside the rate envelope (never below zero offered,
/// never above the on-rate ceiling; near the duty-cycled mean over a
/// long horizon).
#[test]
fn burst_arrivals_are_deterministic_and_rate_enveloped() {
    let horizon = 20.0;
    let mix = |seed: u64| {
        TrafficMix::new(
            "burst-envelope",
            UseCase::Datacenter,
            vec![scar::serve::RequestStream {
                model: scar::workloads::zoo::resnet50(),
                samples_per_request: 1,
                arrivals: scar::serve::ArrivalProcess::Burst {
                    burst_rate_hz: 120.0,
                    mean_on_s: 0.05,
                    mean_off_s: 0.15,
                },
                deadline_s: None,
            }],
            seed,
        )
    };
    // determinism per seed
    let a = mix(3).arrivals(horizon);
    let b = mix(3).arrivals(horizon);
    assert_eq!(a.len(), b.len());
    assert!(a
        .iter()
        .zip(&b)
        .all(|(x, y)| x.arrival_s == y.arrival_s && x.id == y.id));
    // distinct across seeds
    let c = mix(4).arrivals(horizon);
    assert!(a.len() != c.len() || a.iter().zip(&c).any(|(x, y)| x.arrival_s != y.arrival_s));
    // in-horizon, sorted, sequentially identified
    for (i, r) in a.iter().enumerate() {
        assert!((0.0..horizon).contains(&r.arrival_s));
        assert_eq!(r.id, i as u64);
    }
    // rate envelope: mean = 120 * 0.05/0.20 = 30 req/s; the ceiling is
    // the on-rate itself. Long-horizon count must sit well inside.
    let mean = mix(3).offered_rps();
    assert!((mean - 30.0).abs() < 1e-9);
    let n = a.len() as f64;
    assert!(n < 120.0 * horizon, "cannot exceed the on-rate ceiling");
    assert!(
        (0.5..=1.8).contains(&(n / (mean * horizon))),
        "empirical rate {} vs mean envelope {}",
        n / horizon,
        mean
    );
}

/// (d) Diurnal generators: deterministic per seed, in-horizon, rate near
/// the base over whole periods, and actually *modulated* — peak-phase
/// windows strictly busier than trough-phase windows.
#[test]
fn diurnal_arrivals_are_deterministic_and_modulated() {
    let horizon = 20.0;
    let period = 2.0;
    let mix = |seed: u64| {
        TrafficMix::new(
            "diurnal-envelope",
            UseCase::Datacenter,
            vec![scar::serve::RequestStream {
                model: scar::workloads::zoo::resnet50(),
                samples_per_request: 1,
                arrivals: scar::serve::ArrivalProcess::Diurnal {
                    base_hz: 40.0,
                    amplitude: 0.9,
                    period_s: period,
                },
                deadline_s: None,
            }],
            seed,
        )
    };
    let a = mix(11).arrivals(horizon);
    let b = mix(11).arrivals(horizon);
    assert_eq!(a.len(), b.len());
    assert!(a.iter().zip(&b).all(|(x, y)| x.arrival_s == y.arrival_s));
    for r in &a {
        assert!((0.0..horizon).contains(&r.arrival_s));
    }
    // whole-period mean: λ averages to base_hz over [0, 20] = 10 periods
    let n = a.len() as f64;
    assert!(
        (0.6..=1.4).contains(&(n / (40.0 * horizon))),
        "empirical rate {} vs base 40",
        n / horizon
    );
    // modulation: sin > 0 half-periods (peaks) must out-arrive sin < 0
    // half-periods (troughs) decisively at amplitude 0.9
    let (mut peak, mut trough) = (0usize, 0usize);
    for r in &a {
        let phase = (r.arrival_s / period).fract();
        if phase < 0.5 {
            peak += 1;
        } else {
            trough += 1;
        }
    }
    assert!(
        peak > trough * 2,
        "peak halves ({peak}) must dominate trough halves ({trough})"
    );
    // amplitude 0 degenerates to plain Poisson determinism
    let flat = TrafficMix::new(
        "flat",
        UseCase::Datacenter,
        vec![scar::serve::RequestStream {
            model: scar::workloads::zoo::resnet50(),
            samples_per_request: 1,
            arrivals: scar::serve::ArrivalProcess::Diurnal {
                base_hz: 40.0,
                amplitude: 0.0,
                period_s: period,
            },
            deadline_s: None,
        }],
        11,
    );
    let f = flat.arrivals(horizon);
    assert!((0.7..=1.3).contains(&(f.len() as f64 / (40.0 * horizon))));
}

/// Reshaping preserves the mean offered load and the deadlines while
/// changing only the arrival shape — the contract `bench_overload` and
/// the serve-cache context rely on.
#[test]
fn reshaping_preserves_mean_rate_and_deadlines() {
    let native = TrafficMix::arvr(1);
    for shape in [
        TrafficShape::Poisson,
        TrafficShape::Burst,
        TrafficShape::Diurnal,
    ] {
        let reshaped = TrafficMix::arvr(1).reshaped(shape);
        assert!(
            (reshaped.offered_rps() - native.offered_rps()).abs() < 1e-9,
            "{shape}: mean offered load must be preserved"
        );
        for (n, r) in native.streams.iter().zip(&reshaped.streams) {
            assert_eq!(n.deadline_s, r.deadline_s, "{shape}: deadlines untouched");
        }
        // distinct shape fingerprints per family, stable across seeds
        assert_ne!(
            reshaped.shape_fingerprint(),
            native.shape_fingerprint(),
            "{shape} must not alias the native shape"
        );
        assert_eq!(
            reshaped.shape_fingerprint(),
            TrafficMix::arvr(999).reshaped(shape).shape_fingerprint(),
            "{shape}: seeds do not change the shape"
        );
    }
}
