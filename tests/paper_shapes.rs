//! Shape tests pinning the qualitative findings of the paper's evaluation
//! (§V-F "Summary of Results and Main Insights") at test scale.

use scar::core::baselines::Standalone;
use scar::core::{OptMetric, PackingRule, Scar, ScheduleRequest, Scheduler, SearchBudget, Session};
use scar::maestro::{ChipletConfig, Dataflow};
use scar::mcm::templates::{self, Profile};
use scar::workloads::{zoo, LayerKind, Scenario};

fn quick() -> SearchBudget {
    SearchBudget {
        max_root_perms: 16,
        max_paths_per_model: 8,
        max_placements_per_window: 200,
        max_candidates_per_window: 400,
        ..SearchBudget::default()
    }
}

fn request(sc: &Scenario, mcm: &scar::mcm::McmConfig) -> ScheduleRequest {
    ScheduleRequest::new(sc.clone(), mcm.clone()).budget(quick())
}

/// Per-layer dataflow affinities that the heterogeneous MCM exploits.
#[test]
fn dataflow_affinities_match_the_papers_motivation() {
    let nvd = ChipletConfig::datacenter(Dataflow::NvdlaLike);
    let shi = ChipletConfig::datacenter(Dataflow::ShidiannaoLike);

    // transformer FFN at batch 1: NVDLA wins decisively
    let ffn = LayerKind::Gemm {
        m: 5120,
        k: 1280,
        n: 128,
    };
    assert!(nvd.evaluate(&ffn, 1).time_s * 4.0 < shi.evaluate(&ffn, 1).time_s);

    // U-Net's giant-feature-map convolution: Shidiannao wins
    let unet_conv = LayerKind::Conv2d {
        in_h: 512,
        in_w: 512,
        in_ch: 64,
        out_ch: 64,
        kernel_h: 3,
        kernel_w: 3,
        stride: 1,
        padding: 1,
        groups: 1,
    };
    assert!(shi.evaluate(&unet_conv, 1).time_s < nvd.evaluate(&unet_conv, 1).time_s);

    // ResNet's small-map bottleneck convolution: NVDLA at least competitive
    let resnet_conv = LayerKind::Conv2d {
        in_h: 28,
        in_w: 28,
        in_ch: 128,
        out_ch: 128,
        kernel_h: 3,
        kernel_w: 3,
        stride: 1,
        padding: 1,
        groups: 1,
    };
    assert!(nvd.evaluate(&resnet_conv, 1).time_s <= shi.evaluate(&resnet_conv, 1).time_s * 1.2);
}

/// Insight: homogeneous NVD patterns suit the small LM scenarios (Sc1-3).
#[test]
fn homogeneous_nvd_wins_light_datacenter_scenarios() {
    let sc = Scenario::datacenter(1);
    let session = Session::new();
    let scar = Scar::with_defaults();
    let nvd = scar
        .schedule(
            &session,
            &request(
                &sc,
                &templates::simba_3x3(Profile::Datacenter, Dataflow::NvdlaLike),
            ),
        )
        .unwrap();
    let shi = scar
        .schedule(
            &session,
            &request(
                &sc,
                &templates::simba_3x3(Profile::Datacenter, Dataflow::ShidiannaoLike),
            ),
        )
        .unwrap();
    assert!(nvd.total().edp() * 5.0 < shi.total().edp());
}

/// Insight: heterogeneous patterns pay off as diversity/load grow
/// (Sc9, the conv-heavy AR/VR scenario, vs the NVD homogeneous package).
#[test]
fn heterogeneous_wins_diverse_arvr_scenario() {
    let sc = Scenario::arvr(9);
    let session = Session::new();
    let scar = Scar::with_defaults();
    let het = scar
        .schedule(
            &session,
            &request(&sc, &templates::het_sides_3x3(Profile::ArVr)),
        )
        .unwrap();
    let nvd = scar
        .schedule(
            &session,
            &request(
                &sc,
                &templates::simba_3x3(Profile::ArVr, Dataflow::NvdlaLike),
            ),
        )
        .unwrap();
    assert!(
        het.total().edp() < nvd.total().edp(),
        "het {} !< nvd {}",
        het.total().edp(),
        nvd.total().edp()
    );
}

/// Insight: inter-chiplet pipelining speeds up batched models when ample
/// resources exist (§V-B "Pipelining Benefits").
#[test]
fn pipelining_beats_standalone_for_batched_vision_models() {
    use scar::workloads::{ScenarioModel, UseCase};
    let sc = Scenario::new(
        "resnet-only",
        UseCase::Datacenter,
        vec![ScenarioModel {
            model: zoo::resnet50(),
            batch: 32,
        }],
    );
    let mcm = templates::simba_3x3(Profile::Datacenter, Dataflow::NvdlaLike);
    let session = Session::new();
    let stand = Standalone::new()
        .schedule(&session, &request(&sc, &mcm).metric(OptMetric::Latency))
        .unwrap();
    let scar = Scar::builder()
        .nsplits(0)
        .build()
        .schedule(&session, &request(&sc, &mcm).metric(OptMetric::Latency))
        .unwrap();
    assert!(
        scar.total().latency_s < stand.total().latency_s,
        "pipelined {} !< standalone {}",
        scar.total().latency_s,
        stand.total().latency_s
    );
}

/// §V-E ablation: both packing rules produce valid schedules of the same
/// magnitude. (Note: the paper reports greedy ahead of uniform by ~22% in
/// latency; in this reproduction the ordering varies with the search
/// budget and can invert — see EXPERIMENTS.md. The invariant pinned here
/// is validity plus same-order-of-magnitude EDP.)
#[test]
fn packing_rules_both_produce_comparable_schedules() {
    let sc = Scenario::datacenter(4);
    let mcm = templates::het_sides_3x3(Profile::Datacenter);
    let session = Session::new();
    let run = |rule| {
        let r = Scar::builder()
            .packing(rule)
            .build()
            .schedule(&session, &request(&sc, &mcm))
            .unwrap();
        r.schedule().validate(&sc, mcm.num_chiplets()).unwrap();
        r.total()
    };
    let greedy = run(PackingRule::Greedy);
    let uniform = run(PackingRule::Uniform);
    let ratio = greedy.edp() / uniform.edp();
    assert!(
        (0.3..=3.0).contains(&ratio),
        "greedy {} vs uniform {}",
        greedy.edp(),
        uniform.edp()
    );
}

/// §V-E topology generalization: triangular NoP schedules are valid and
/// their extra links never hurt hop counts.
#[test]
fn triangular_topology_shortens_routes() {
    let mesh = templates::simba_3x3(Profile::Datacenter, Dataflow::NvdlaLike);
    let tri = templates::simba_t_3x3(Profile::Datacenter, Dataflow::NvdlaLike);
    for a in 0..9 {
        for b in 0..9 {
            assert!(tri.topology().hops(a, b) <= mesh.topology().hops(a, b));
        }
    }
    assert!(tri.topology().hops(0, 8) < mesh.topology().hops(0, 8));
}

/// Table VI scheduling-unit counts are pinned (the problem size the paper
/// reports).
#[test]
fn table_vi_layer_counts() {
    assert_eq!(zoo::gpt_l().num_layers(), 120);
    assert_eq!(zoo::bert_large().num_layers(), 60);
    assert_eq!(zoo::unet().num_layers(), 23);
    assert_eq!(zoo::resnet50().num_layers(), 66);
    assert_eq!(Scenario::datacenter(4).num_layers(), 269);
}
