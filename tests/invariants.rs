//! Property-based tests over the public API: the paper's structural
//! theorems (1 and 2), cost-model monotonicity, Pareto correctness, and
//! communication-model laws.

use proptest::prelude::*;
use scar::core::{OptMetric, Scar, SearchBudget};
use scar::maestro::{ChipletConfig, Dataflow};
use scar::mcm::templates::{het_sides_3x3, Profile};
use scar::mcm::{Loc, NopTopology};
use scar::workloads::{LayerKind, ModelBuilder, Scenario, ScenarioModel, UseCase};

fn tiny_budget(seed: u64) -> SearchBudget {
    SearchBudget {
        max_root_perms: 8,
        max_paths_per_model: 4,
        max_placements_per_window: 60,
        max_candidates_per_window: 120,
        seed,
        ..SearchBudget::default()
    }
}

/// A small random two-model scenario.
fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    (
        2u64..32,   // conv channels base
        1u64..9,    // conv layer count
        1u64..7,    // gemm layer count
        1u64..9,    // batch a
        1u64..17,   // batch b
    )
        .prop_map(|(ch, convs, gemms, ba, bb)| {
            let mut a = ModelBuilder::new("conv-net");
            let mut hw = 64u64;
            let mut c = 3u64;
            for i in 0..convs {
                let out = ch * (i + 1);
                a = a.conv(format!("c{i}"), hw, c, out, 3, if i % 2 == 1 { 2 } else { 1 });
                if i % 2 == 1 {
                    hw /= 2;
                }
                c = out;
            }
            let mut b = ModelBuilder::new("gemm-net");
            for i in 0..gemms {
                b = b.gemm(format!("g{i}"), 64 * (i + 1), 32 * (i + 1), 16);
            }
            Scenario::new(
                "prop",
                UseCase::Datacenter,
                vec![
                    ScenarioModel { model: a.build(), batch: ba },
                    ScenarioModel { model: b.build(), batch: bb },
                ],
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Theorems 1 & 2 end-to-end: any schedule SCAR emits for any random
    /// scenario passes full structural validation (window partition covers
    /// every model's layers in order; segments tile windows; no chiplet is
    /// claimed twice in one window).
    #[test]
    fn emitted_schedules_are_always_valid(sc in scenario_strategy(), nsplits in 0usize..5, seed in 0u64..1000) {
        let mcm = het_sides_3x3(Profile::Datacenter);
        let r = Scar::builder()
            .nsplits(nsplits)
            .budget(tiny_budget(seed))
            .build()
            .schedule(&sc, &mcm)
            .expect("two models on nine chiplets is always feasible");
        r.schedule().validate(&sc, mcm.num_chiplets()).expect("valid by construction");
        prop_assert!(r.total().latency_s.is_finite() && r.total().latency_s > 0.0);
        prop_assert!(r.total().energy_j.is_finite() && r.total().energy_j > 0.0);
    }

    /// The winner minimizes its own metric over the candidate cloud.
    #[test]
    fn winner_is_optimal_within_candidates(sc in scenario_strategy(), seed in 0u64..1000) {
        let mcm = het_sides_3x3(Profile::Datacenter);
        for metric in [OptMetric::Latency, OptMetric::Energy, OptMetric::Edp] {
            let r = Scar::builder()
                .metric(metric.clone())
                .budget(tiny_budget(seed))
                .build()
                .schedule(&sc, &mcm)
                .unwrap();
            let best = metric.score(&r.total());
            for c in r.candidates() {
                let t = scar::core::EvalTotals { latency_s: c.latency_s, energy_j: c.energy_j };
                prop_assert!(best <= metric.score(&t) * (1.0 + 1e-9));
            }
        }
    }

    /// The reported Pareto front is sorted, non-dominated, and a subset of
    /// the candidate cloud.
    #[test]
    fn pareto_front_is_sound(sc in scenario_strategy(), seed in 0u64..1000) {
        let mcm = het_sides_3x3(Profile::Datacenter);
        let r = Scar::builder().budget(tiny_budget(seed)).build().schedule(&sc, &mcm).unwrap();
        let front = r.pareto_front();
        prop_assert!(!front.is_empty());
        for w in front.windows(2) {
            prop_assert!(w[1].latency_s >= w[0].latency_s);
            prop_assert!(w[1].energy_j < w[0].energy_j);
        }
        for p in &front {
            prop_assert!(r.candidates().iter().any(|c|
                (c.latency_s - p.latency_s).abs() < 1e-15 && (c.energy_j - p.energy_j).abs() < 1e-15));
        }
    }

    /// Cost-model law: latency and energy grow monotonically with batch.
    #[test]
    fn layer_cost_monotone_in_batch(m in 1u64..512, k in 1u64..512, n in 1u64..64, b in 1u64..16) {
        let g = LayerKind::Gemm { m, k, n };
        for df in Dataflow::ALL {
            let ch = ChipletConfig::datacenter(df);
            let small = ch.evaluate(&g, b);
            let big = ch.evaluate(&g, b + 1);
            prop_assert!(big.time_s >= small.time_s * 0.999);
            prop_assert!(big.energy_j > small.energy_j * 0.999);
        }
    }

    /// Communication law: cost is monotone in payload size and hop count
    /// on arbitrary meshes.
    #[test]
    fn comm_cost_monotone(rows in 2usize..5, cols in 2usize..5, bytes in 1u64..10_000_000) {
        let mcm = scar::mcm::McmConfig::new(
            "prop-mesh",
            (0..rows * cols).map(|_| ChipletConfig::datacenter(Dataflow::NvdlaLike)).collect(),
            NopTopology::mesh(rows, cols),
            vec![0],
        );
        let far = mcm.transfer(Loc::Chiplet(0), Loc::Chiplet(rows * cols - 1), bytes);
        let near = mcm.transfer(Loc::Chiplet(0), Loc::Chiplet(1), bytes);
        prop_assert!(far.time_s >= near.time_s);
        prop_assert!(far.energy_j >= near.energy_j);
        let double = mcm.transfer(Loc::Chiplet(0), Loc::Chiplet(1), bytes * 2);
        prop_assert!(double.time_s >= near.time_s);
        prop_assert!(double.energy_j >= near.energy_j * 1.999);
    }

    /// Topology law: hop counts are a metric (symmetric, triangle
    /// inequality) on random connected meshes and their routes realize them.
    #[test]
    fn hops_form_a_metric(rows in 1usize..5, cols in 1usize..5) {
        let t = NopTopology::mesh(rows, cols);
        let n = t.num_nodes();
        for a in 0..n {
            for b in 0..n {
                prop_assert_eq!(t.hops(a, b), t.hops(b, a));
                prop_assert_eq!(t.route(a, b).len() as u32, t.hops(a, b) + 1);
                for c in 0..n {
                    prop_assert!(t.hops(a, c) <= t.hops(a, b) + t.hops(b, c));
                }
            }
        }
    }
}
