//! Property-style tests over the public API: the paper's structural
//! theorems (1 and 2), cost-model monotonicity, Pareto correctness, and
//! communication-model laws.
//!
//! Originally written with `proptest`; this environment has no crates.io
//! access, so the same properties are exercised by deterministic sweeps
//! over seeded pseudo-random samples (the vendored `rand` stub), which
//! keeps failures reproducible by construction.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scar::core::{OptMetric, Scar, ScheduleRequest, Scheduler, SearchBudget, Session};
use scar::maestro::{ChipletConfig, Dataflow};
use scar::mcm::templates::{het_sides_3x3, Profile};
use scar::mcm::{Loc, NopTopology};
use scar::workloads::{LayerKind, ModelBuilder, Scenario, ScenarioModel, UseCase};

fn tiny_budget(seed: u64) -> SearchBudget {
    SearchBudget {
        max_root_perms: 8,
        max_paths_per_model: 4,
        max_placements_per_window: 60,
        max_candidates_per_window: 120,
        seed,
        ..SearchBudget::default()
    }
}

/// A small random two-model scenario (conv net + GEMM net), drawn from the
/// same parameter space the original proptest strategy used.
fn random_scenario(rng: &mut StdRng) -> Scenario {
    let ch = rng.gen_range(2u64..32);
    let convs = rng.gen_range(1u64..9);
    let gemms = rng.gen_range(1u64..7);
    let ba = rng.gen_range(1u64..9);
    let bb = rng.gen_range(1u64..17);

    let mut a = ModelBuilder::new("conv-net");
    let mut hw = 64u64;
    let mut c = 3u64;
    for i in 0..convs {
        let out = ch * (i + 1);
        a = a.conv(
            format!("c{i}"),
            hw,
            c,
            out,
            3,
            if i % 2 == 1 { 2 } else { 1 },
        );
        if i % 2 == 1 {
            hw /= 2;
        }
        c = out;
    }
    let mut b = ModelBuilder::new("gemm-net");
    for i in 0..gemms {
        b = b.gemm(format!("g{i}"), 64 * (i + 1), 32 * (i + 1), 16);
    }
    Scenario::new(
        "prop",
        UseCase::Datacenter,
        vec![
            ScenarioModel {
                model: a.build(),
                batch: ba,
            },
            ScenarioModel {
                model: b.build(),
                batch: bb,
            },
        ],
    )
}

/// Theorems 1 & 2 end-to-end: any schedule SCAR emits for any random
/// scenario passes full structural validation (window partition covers
/// every model's layers in order; segments tile windows; no chiplet is
/// claimed twice in one window).
#[test]
fn emitted_schedules_are_always_valid() {
    let mut rng = StdRng::seed_from_u64(0xA11D);
    let mcm = het_sides_3x3(Profile::Datacenter);
    for case in 0..12 {
        let sc = random_scenario(&mut rng);
        let nsplits = rng.gen_range(0usize..5);
        let seed = rng.gen_range(0u64..1000);
        let r = Scar::builder()
            .nsplits(nsplits)
            .build()
            .schedule(
                &Session::new(),
                &ScheduleRequest::new(sc.clone(), mcm.clone()).budget(tiny_budget(seed)),
            )
            .expect("two models on nine chiplets is always feasible");
        r.schedule()
            .validate(&sc, mcm.num_chiplets())
            .unwrap_or_else(|e| panic!("case {case}: invalid schedule: {e}"));
        assert!(r.total().latency_s.is_finite() && r.total().latency_s > 0.0);
        assert!(r.total().energy_j.is_finite() && r.total().energy_j > 0.0);
    }
}

/// The winner minimizes its own metric over the candidate cloud.
#[test]
fn winner_is_optimal_within_candidates() {
    let mut rng = StdRng::seed_from_u64(0x0B7);
    let mcm = het_sides_3x3(Profile::Datacenter);
    for _ in 0..4 {
        let sc = random_scenario(&mut rng);
        let seed = rng.gen_range(0u64..1000);
        for metric in [OptMetric::Latency, OptMetric::Energy, OptMetric::Edp] {
            let r = Scar::with_defaults()
                .schedule(
                    &Session::new(),
                    &ScheduleRequest::new(sc.clone(), mcm.clone())
                        .metric(metric.clone())
                        .budget(tiny_budget(seed)),
                )
                .unwrap();
            let best = metric.score(&r.total());
            for c in r.candidates() {
                let t = scar::core::EvalTotals {
                    latency_s: c.latency_s,
                    energy_j: c.energy_j,
                };
                assert!(
                    best <= metric.score(&t) * (1.0 + 1e-9),
                    "{}: best {best} beaten by {}",
                    metric.label(),
                    metric.score(&t)
                );
            }
        }
    }
}

/// The reported Pareto front is sorted, non-dominated, and a subset of
/// the candidate cloud.
#[test]
fn pareto_front_is_sound() {
    let mut rng = StdRng::seed_from_u64(0x9A6E);
    let mcm = het_sides_3x3(Profile::Datacenter);
    for _ in 0..8 {
        let sc = random_scenario(&mut rng);
        let seed = rng.gen_range(0u64..1000);
        let r = Scar::with_defaults()
            .schedule(
                &Session::new(),
                &ScheduleRequest::new(sc.clone(), mcm.clone()).budget(tiny_budget(seed)),
            )
            .unwrap();
        let front = r.pareto_front();
        assert!(!front.is_empty());
        for w in front.windows(2) {
            assert!(w[1].latency_s >= w[0].latency_s);
            assert!(w[1].energy_j < w[0].energy_j);
        }
        for p in &front {
            assert!(r
                .candidates()
                .iter()
                .any(|c| (c.latency_s - p.latency_s).abs() < 1e-15
                    && (c.energy_j - p.energy_j).abs() < 1e-15));
        }
    }
}

/// Cost-model law: latency and energy grow monotonically with batch.
#[test]
fn layer_cost_monotone_in_batch() {
    let mut rng = StdRng::seed_from_u64(0xC057);
    for _ in 0..64 {
        let g = LayerKind::Gemm {
            m: rng.gen_range(1u64..512),
            k: rng.gen_range(1u64..512),
            n: rng.gen_range(1u64..64),
        };
        let b = rng.gen_range(1u64..16);
        for df in Dataflow::ALL {
            let ch = ChipletConfig::datacenter(df);
            let small = ch.evaluate(&g, b);
            let big = ch.evaluate(&g, b + 1);
            assert!(big.time_s >= small.time_s * 0.999);
            assert!(big.energy_j > small.energy_j * 0.999);
        }
    }
}

/// Communication law: cost is monotone in payload size and hop count
/// on arbitrary meshes.
#[test]
fn comm_cost_monotone() {
    let mut rng = StdRng::seed_from_u64(0xC033);
    for _ in 0..32 {
        let rows = rng.gen_range(2usize..5);
        let cols = rng.gen_range(2usize..5);
        let bytes = rng.gen_range(1u64..10_000_000);
        let mcm = scar::mcm::McmConfig::new(
            "prop-mesh",
            (0..rows * cols)
                .map(|_| ChipletConfig::datacenter(Dataflow::NvdlaLike))
                .collect(),
            NopTopology::mesh(rows, cols),
            vec![0],
        );
        let far = mcm.transfer(Loc::Chiplet(0), Loc::Chiplet(rows * cols - 1), bytes);
        let near = mcm.transfer(Loc::Chiplet(0), Loc::Chiplet(1), bytes);
        assert!(far.time_s >= near.time_s);
        assert!(far.energy_j >= near.energy_j);
        let double = mcm.transfer(Loc::Chiplet(0), Loc::Chiplet(1), bytes * 2);
        assert!(double.time_s >= near.time_s);
        assert!(double.energy_j >= near.energy_j * 1.999);
    }
}

/// Topology law: hop counts are a metric (symmetric, triangle inequality)
/// on meshes, and routes realize them.
#[test]
fn hops_form_a_metric() {
    for rows in 1usize..5 {
        for cols in 1usize..5 {
            let t = NopTopology::mesh(rows, cols);
            let n = t.num_nodes();
            for a in 0..n {
                for b in 0..n {
                    assert_eq!(t.hops(a, b), t.hops(b, a));
                    assert_eq!(t.route(a, b).len() as u32, t.hops(a, b) + 1);
                    for c in 0..n {
                        assert!(t.hops(a, c) <= t.hops(a, b) + t.hops(b, c));
                    }
                }
            }
        }
    }
}
