//! Integration tests for cost-database persistence, the policy registry,
//! and artifact replay: the three layers that make a cold start free.
//!
//! * a cost snapshot saved by one session and loaded into a *fresh* one
//!   must schedule bit-identically at zero MAESTRO evaluations;
//! * corrupted / version-mismatched / wrong-model snapshots are rejected
//!   whole, with errors naming the mismatch;
//! * registry-built schedulers are stable: the same name under the same
//!   config fingerprints identically across constructions (the property
//!   persisted fingerprints rely on);
//! * a replayed artifact reproduces its recording exactly under the
//!   unchanged cost model.

use scar::core::{OptMetric, Scar, ScheduleRequest, Scheduler, SearchBudget, Session};
use scar::mcm::templates::{het_sides_3x3, Profile};
use scar::workloads::Scenario;
use std::path::PathBuf;

/// Hermetic temp path per test (tests run concurrently in one binary).
fn temp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("scar_persistence_{name}.json"))
}

fn quick() -> SearchBudget {
    SearchBudget {
        max_root_perms: 8,
        max_paths_per_model: 4,
        max_placements_per_window: 60,
        max_candidates_per_window: 120,
        ..SearchBudget::default()
    }
}

fn request() -> ScheduleRequest {
    ScheduleRequest::new(Scenario::datacenter(1), het_sides_3x3(Profile::Datacenter))
        .metric(OptMetric::Edp)
        .budget(quick())
}

/// The headline acceptance path: save → fresh session → load → schedule.
/// The restored session must produce a bit-identical `ScheduleResult`
/// while performing zero cost-model evaluations.
#[test]
fn snapshot_roundtrip_is_bit_identical_and_free() {
    let path = temp("roundtrip");
    let scar = Scar::with_defaults();
    let req = request();

    let donor = Session::new();
    let recorded = scar.schedule(&donor, &req).expect("feasible");
    assert!(donor.cost_evaluations() > 0, "cold run pays the model");
    donor.save_costs(&path).expect("snapshot writes");

    let restored = Session::from_snapshot(&path).expect("snapshot loads");
    assert_eq!(restored.cached_costs(), donor.cached_costs());
    assert_eq!(restored.cost_evaluations(), 0);
    let replayed = scar.schedule(&restored, &req).expect("still feasible");
    assert_eq!(replayed, recorded, "restored costs must change nothing");
    assert_eq!(
        restored.cost_evaluations(),
        0,
        "a covered schedule run must never invoke MAESTRO"
    );
    std::fs::remove_file(&path).ok();
}

/// Snapshot bytes are deterministic: two sessions that computed the same
/// entries save byte-identical files (diffable CI artifacts).
#[test]
fn snapshot_bytes_are_reproducible_across_sessions() {
    let (a, b) = (temp("bytes_a"), temp("bytes_b"));
    for (path, _) in [(&a, 0), (&b, 1)] {
        let session = Session::new();
        session.warm_up(&request());
        session.save_costs(path).unwrap();
    }
    let (ba, bb) = (std::fs::read(&a).unwrap(), std::fs::read(&b).unwrap());
    std::fs::remove_file(&a).ok();
    std::fs::remove_file(&b).ok();
    assert_eq!(ba, bb);
}

#[test]
fn corrupted_and_mismatched_snapshots_are_rejected() {
    use scar::maestro::{SnapshotError, SNAPSHOT_FORMAT_VERSION};
    let path = temp("reject");

    // truncated / non-JSON file
    std::fs::write(&path, "{ \"format\": \"scar-maestro-cost-db\", ").unwrap();
    let err = Session::from_snapshot(&path).expect_err("corrupt file must be rejected");
    assert!(
        matches!(err, SnapshotError::Malformed(_)),
        "got {err}: {err:?}"
    );

    // version bump
    let donor = Session::new();
    donor.warm_up(&request());
    donor.save_costs(&path).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::write(
        &path,
        text.replace(
            &format!("\"format_version\": {SNAPSHOT_FORMAT_VERSION}"),
            "\"format_version\": 999",
        ),
    )
    .unwrap();
    let err = Session::from_snapshot(&path).expect_err("future version must be rejected");
    match err {
        SnapshotError::VersionMismatch { found, expected } => {
            assert_eq!(found, 999);
            assert_eq!(expected, SNAPSHOT_FORMAT_VERSION);
        }
        other => panic!("expected VersionMismatch, got {other}"),
    }
    assert!(
        err.to_string().contains("999"),
        "the error must name the found version"
    );

    // wrong cost model: flip a fingerprint bit
    let real = format!("{:#018x}", scar::maestro::cost_model_fingerprint());
    let fake = format!("{:#018x}", scar::maestro::cost_model_fingerprint() ^ 0xff);
    std::fs::write(&path, text.replace(&real, &fake)).unwrap();
    let err = Session::from_snapshot(&path).expect_err("foreign model must be rejected");
    assert!(
        matches!(err, SnapshotError::CostModelMismatch { .. }),
        "got {err}"
    );
    // rejection is total: nothing was absorbed into a session that tried
    let partial = Session::new();
    assert!(partial.load_costs(&path).is_err());
    assert_eq!(partial.cached_costs(), 0);
    std::fs::remove_file(&path).ok();
}

/// Registry round-trip: name → scheduler → `fingerprint_config` stable.
/// Schedulers built twice from one name/config pair must be cache-key
/// interchangeable, and every registered name must actually schedule.
#[test]
fn registry_builds_stable_interchangeable_schedulers() {
    use scar::serve::{fingerprint, PolicyRegistry, ServeConfig};
    let registry = PolicyRegistry::with_builtins();
    let cfg = ServeConfig::default();
    let req = request();
    let session = Session::new();
    for name in registry.names() {
        let a = registry.build(name, &cfg).unwrap();
        let b = registry.build(name, &cfg).unwrap();
        assert_eq!(a.name(), b.name(), "{name}");
        assert_eq!(
            fingerprint(&req, a.as_ref()),
            fingerprint(&req, b.as_ref()),
            "{name}: rebuilt scheduler must fingerprint identically"
        );
        let ra = a.schedule(&session, &req).unwrap();
        let rb = b.schedule(&session, &req).unwrap();
        assert_eq!(
            ra, rb,
            "{name}: rebuilt scheduler must schedule identically"
        );
    }
}

/// Artifact → registry → replay: the recorded result reproduces exactly,
/// warm or cold — and a warm (snapshot-loaded) replay does it for free.
#[test]
fn replay_reproduces_recordings_at_zero_cost() {
    use scar::serve::{PolicyRegistry, ServeConfig};
    let registry = PolicyRegistry::with_builtins();
    let cfg = ServeConfig::default();
    let scheduler = registry.build("SCAR", &cfg).unwrap();
    let req = request();

    let donor = Session::new();
    let result = scheduler.schedule(&donor, &req).unwrap();
    let artifact = scar::core::ScheduleArtifact::new("round", scheduler.name(), req, result);
    let artifact_path = temp("replay_artifact");
    let snapshot_path = temp("replay_costs");
    scar::core::ScheduleArtifact::save_all(&artifact_path, std::slice::from_ref(&artifact))
        .unwrap();
    donor.save_costs(&snapshot_path).unwrap();

    let warm = Session::from_snapshot(&snapshot_path).unwrap();
    let loaded = scar::core::ScheduleArtifact::load_all(&artifact_path).unwrap();
    let rebuilt = registry.build(&loaded[0].scheduler, &cfg).unwrap();
    let replayed = rebuilt.schedule(&warm, &loaded[0].request).unwrap();
    std::fs::remove_file(&artifact_path).ok();
    std::fs::remove_file(&snapshot_path).ok();
    assert_eq!(replayed, loaded[0].result, "replay must be exact");
    assert_eq!(warm.cost_evaluations(), 0, "and free under the snapshot");
}
