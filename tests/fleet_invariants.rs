//! Fleet-tier invariants: seeded sweeps locking down the routing tier's
//! determinism and conservation contracts from `DESIGN.md` §12.
//!
//! * **Parallelism-independence** — the fleet routes every arrival in one
//!   pass off a virtual backlog model before any replica executes, then
//!   advances replicas in fixed merge order; with per-replica reports
//!   already parallelism-invariant, the whole [`FleetReport`] must be
//!   byte-identical (struct equality *and* rendered form) between
//!   `Serial` and `Fixed(4)` candidate evaluation, under every built-in
//!   dispatch policy, with preemption and admission active.
//! * **Conservation across replicas** — routing splits the arrival
//!   sequence, it never drops or duplicates: `offered == Σ routed` and
//!   `offered == completed + rejected` at the fleet level, with each
//!   replica's own report conserving its share.
//! * **No-regression** — a single-replica fleet is a plain [`ServeSim`]
//!   run wearing a router: its replica report reproduces
//!   `ServeSim::run` byte-for-byte under every policy.

use scar::core::Parallelism;
use scar::mcm::templates::{het_sides_3x3, Profile};
use scar::serve::{
    DispatchKind, FleetConfig, FleetSim, ReplicaSpec, ServeConfig, ServeSim, TrafficMix,
    TrafficShape,
};

/// A replica config that exercises the serving machinery for real:
/// preemption on, multi-window rounds, deadline-feasibility admission.
fn busy_cfg(parallelism: Parallelism) -> ServeConfig {
    ServeConfig {
        preemption: true,
        nsplits: 2,
        admission: scar::serve::AdmissionKind::DeadlineFeasible,
        parallelism,
        ..ServeConfig::default()
    }
}

fn fleet(n: usize, dispatch: DispatchKind, parallelism: Parallelism) -> FleetSim {
    FleetSim::new(
        ReplicaSpec::heterogeneous(n, Profile::ArVr, busy_cfg(parallelism)),
        FleetConfig {
            dispatch,
            ..FleetConfig::default()
        },
    )
}

/// (a) `Serial` and `Fixed(4)` candidate evaluation produce byte-identical
/// fleet reports for every built-in dispatch policy, across seeds, under
/// burst traffic with preemption and admission active.
#[test]
fn fleet_reports_are_parallelism_invariant_per_policy() {
    for seed in [1u64, 7, 42] {
        let mix = TrafficMix::arvr(seed).reshaped(TrafficShape::Burst);
        for kind in DispatchKind::builtins() {
            let label = format!("seed {seed}, {kind:?}");
            let serial = fleet(4, kind.clone(), Parallelism::Serial)
                .run(&mix, 0.2)
                .unwrap();
            let fixed = fleet(4, kind, Parallelism::Fixed(4))
                .run(&mix, 0.2)
                .unwrap();
            assert_eq!(serial, fixed, "{label}: struct equality");
            assert_eq!(
                serial.to_string(),
                fixed.to_string(),
                "{label}: rendered byte-for-byte"
            );
        }
    }
}

/// (b) Conservation across replicas: the router assigns every offered
/// arrival to exactly one replica, and completions plus rejections add
/// back up at both levels — even while preemption splices rounds apart
/// and admission sheds inside each replica.
#[test]
fn routing_conserves_arrivals_across_replicas() {
    for seed in [1u64, 7, 42] {
        let mix = TrafficMix::arvr(seed).reshaped(TrafficShape::Burst);
        let offered = mix.arrivals(0.2).len();
        for kind in DispatchKind::builtins() {
            let label = format!("seed {seed}, {kind:?}");
            let report = fleet(3, kind, Parallelism::Serial).run(&mix, 0.2).unwrap();
            assert_eq!(report.offered, offered, "{label}");
            assert_eq!(
                report.offered,
                report.replicas.iter().map(|r| r.routed).sum::<usize>(),
                "{label}: every arrival routed exactly once"
            );
            assert_eq!(
                report.offered,
                report.completed + report.rejected,
                "{label}: fleet conservation"
            );
            for (i, r) in report.replicas.iter().enumerate() {
                assert_eq!(r.routed, r.report.offered, "{label}: replica {i} offered");
                assert_eq!(
                    r.routed,
                    r.report.completed + r.report.rejected,
                    "{label}: replica {i} conservation"
                );
            }
            assert_eq!(
                report.completed,
                report
                    .replicas
                    .iter()
                    .map(|r| r.report.completed)
                    .sum::<usize>(),
                "{label}: completed rollup"
            );
            assert_eq!(
                report.deadline_misses,
                report
                    .replicas
                    .iter()
                    .map(|r| r.report.deadline_misses)
                    .sum::<usize>(),
                "{label}: miss rollup"
            );
        }
    }
}

/// (c) No-regression: a single-replica fleet reproduces a plain
/// `ServeSim` run byte-for-byte under every dispatch policy — the router
/// adds nothing but the split, and a 1-way split is the identity.
#[test]
fn single_replica_fleet_is_a_plain_serve_sim() {
    let mcm = het_sides_3x3(Profile::ArVr);
    for seed in [1u64, 7] {
        let mix = TrafficMix::arvr(seed).reshaped(TrafficShape::Burst);
        let plain = ServeSim::new(&mcm, busy_cfg(Parallelism::Serial))
            .run(&mix, 0.2)
            .unwrap();
        for kind in DispatchKind::builtins() {
            let label = format!("seed {seed}, {kind:?}");
            let mut one = FleetSim::new(
                ReplicaSpec::homogeneous(1, Profile::ArVr, busy_cfg(Parallelism::Serial)),
                FleetConfig {
                    dispatch: kind,
                    ..FleetConfig::default()
                },
            );
            let fleet_report = one.run(&mix, 0.2).unwrap();
            assert_eq!(
                fleet_report.replicas[0].report, plain,
                "{label}: replica report ≡ plain run"
            );
            assert_eq!(
                fleet_report.replicas[0].report.to_string(),
                plain.to_string(),
                "{label}: rendered byte-for-byte"
            );
            assert_eq!(fleet_report.offered, plain.offered, "{label}");
            assert_eq!(fleet_report.completed, plain.completed, "{label}");
            assert_eq!(fleet_report.rejected, plain.rejected, "{label}");
            assert_eq!(fleet_report.cache, plain.cache, "{label}: cache rollup");
        }
    }
}

/// Identical fleets are deterministic run-to-run: two fresh fleets with
/// the same seed, policy, and replicas render the same report bytes.
#[test]
fn identical_fleet_runs_are_byte_identical() {
    let mix = TrafficMix::arvr(9).reshaped(TrafficShape::Diurnal);
    for kind in DispatchKind::builtins() {
        let a = fleet(4, kind.clone(), Parallelism::Serial)
            .run(&mix, 0.2)
            .unwrap();
        let b = fleet(4, kind.clone(), Parallelism::Serial)
            .run(&mix, 0.2)
            .unwrap();
        assert_eq!(a, b, "{kind:?}");
        assert_eq!(a.to_string(), b.to_string(), "{kind:?}");
    }
}
