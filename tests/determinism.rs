//! Parallel-evaluation determinism: the same scenario scheduled with
//! `Parallelism::Serial`, `Fixed(2)`, and `Fixed(8)` must yield identical
//! `ScheduleResult` totals, window reports, and candidate clouds.
//!
//! This is the contract the window-search engine guarantees by merging
//! batch-evaluation results in generation order (all RNG draws live on the
//! single-threaded generation side), and it is what justifies excluding
//! the parallelism knob from schedule-cache fingerprints.

use scar::core::{
    EvoParams, OptMetric, Parallelism, Scar, ScheduleRequest, ScheduleResult, Scheduler,
    SearchBudget, SearchKind, Session,
};
use scar::mcm::templates::{het_cross_6x6, het_sides_3x3, Profile};
use scar::mcm::McmConfig;
use scar::workloads::Scenario;

fn quick_budget(parallelism: Parallelism) -> SearchBudget {
    SearchBudget {
        max_root_perms: 12,
        max_paths_per_model: 6,
        max_placements_per_window: 200,
        max_candidates_per_window: 400,
        parallelism,
        ..SearchBudget::default()
    }
}

fn schedule(
    sc: &Scenario,
    mcm: &McmConfig,
    kind: SearchKind,
    metric: OptMetric,
    parallelism: Parallelism,
) -> ScheduleResult {
    let request = ScheduleRequest::new(sc.clone(), mcm.clone())
        .metric(metric)
        .budget(quick_budget(parallelism));
    Scar::builder()
        .nsplits(2)
        .search(kind)
        .build()
        .schedule(&Session::new(), &request)
        .expect("scenario schedules")
}

fn assert_identical(a: &ScheduleResult, b: &ScheduleResult, what: &str) {
    assert_eq!(a.total(), b.total(), "{what}: totals diverged");
    assert_eq!(
        a.schedule(),
        b.schedule(),
        "{what}: chosen schedule diverged"
    );
    assert_eq!(a.windows(), b.windows(), "{what}: window reports diverged");
    assert_eq!(
        a.candidates(),
        b.candidates(),
        "{what}: candidate clouds diverged"
    );
}

const THREADINGS: [Parallelism; 2] = [Parallelism::Fixed(2), Parallelism::Fixed(8)];

#[test]
fn brute_force_is_identical_across_thread_counts() {
    let sc = Scenario::datacenter(1);
    let mcm = het_sides_3x3(Profile::Datacenter);
    let serial = schedule(
        &sc,
        &mcm,
        SearchKind::BruteForce,
        OptMetric::Edp,
        Parallelism::Serial,
    );
    for par in THREADINGS {
        let parallel = schedule(&sc, &mcm, SearchKind::BruteForce, OptMetric::Edp, par);
        assert_identical(&serial, &parallel, &format!("brute {par:?}"));
    }
}

#[test]
fn evolutionary_is_identical_across_thread_counts() {
    // the EA is the adversarial case: its generation loop *feeds on*
    // evaluation scores, so any evaluation-order leak would diverge here
    let sc = Scenario::datacenter(4);
    let mcm = het_cross_6x6(Profile::Datacenter);
    let kind = SearchKind::Evolutionary(EvoParams::default());
    let serial = schedule(&sc, &mcm, kind.clone(), OptMetric::Edp, Parallelism::Serial);
    for par in THREADINGS {
        let parallel = schedule(&sc, &mcm, kind.clone(), OptMetric::Edp, par);
        assert_identical(&serial, &parallel, &format!("evolutionary {par:?}"));
    }
}

#[test]
fn metrics_other_than_edp_are_deterministic_too() {
    let sc = Scenario::datacenter(2);
    let mcm = het_sides_3x3(Profile::Datacenter);
    for metric in [OptMetric::Latency, OptMetric::Energy] {
        let serial = schedule(
            &sc,
            &mcm,
            SearchKind::BruteForce,
            metric.clone(),
            Parallelism::Serial,
        );
        let parallel = schedule(
            &sc,
            &mcm,
            SearchKind::BruteForce,
            metric.clone(),
            Parallelism::Fixed(8),
        );
        assert_identical(&serial, &parallel, metric.label());
    }
}

#[test]
fn auto_matches_serial() {
    // Auto resolves to whatever the host offers; results must still match
    let sc = Scenario::datacenter(1);
    let mcm = het_sides_3x3(Profile::Datacenter);
    let serial = schedule(
        &sc,
        &mcm,
        SearchKind::BruteForce,
        OptMetric::Edp,
        Parallelism::Serial,
    );
    let auto = schedule(
        &sc,
        &mcm,
        SearchKind::BruteForce,
        OptMetric::Edp,
        Parallelism::Auto,
    );
    assert_identical(&serial, &auto, "auto");
}
