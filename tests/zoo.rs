//! Scheduler-zoo invariants, swept over *every* policy in
//! [`PolicyRegistry::with_zoo`]: each one serves a short live mix with
//! Serial ≡ Fixed(4) bit-identity, each one's recorded artifact replays
//! exactly through the same registry it was built from, the NSGA-SCAR
//! candidate cloud's Pareto front is mutually non-dominated, and the
//! rendered catalog covers the registry one-to-one. This is the test the
//! CI `zoo-smoke` job runs: registering a policy without a doc card, or
//! one that drifts across thread counts, fails here.

use scar::core::{
    OptMetric, Parallelism, ScheduleArtifact, ScheduleRequest, SearchBudget, Session,
};
use scar::mcm::templates::{het_sides_3x3, Profile};
use scar::serve::{catalog, PolicyRegistry, ServeConfig, ServeSim, TrafficMix};
use scar::workloads::Scenario;

/// A trimmed search budget so the whole-zoo sweeps stay test-sized.
fn quick() -> SearchBudget {
    SearchBudget {
        max_root_perms: 8,
        max_paths_per_model: 4,
        max_placements_per_window: 60,
        max_candidates_per_window: 120,
        ..SearchBudget::default()
    }
}

fn offline_request() -> ScheduleRequest {
    ScheduleRequest::new(Scenario::datacenter(1), het_sides_3x3(Profile::Datacenter))
        .metric(OptMetric::Edp)
        .budget(quick())
}

/// Every registered policy serves the same short AR/VR mix, and its
/// report is bit-identical between serial and 4-thread candidate
/// evaluation — the zoo-wide extension of the engine's Serial ≡ Fixed(N)
/// guarantee (new schedulers that sneak in iteration-order or RNG
/// dependence fail here by name).
#[test]
fn every_zoo_policy_is_parallelism_independent_on_a_live_mix() {
    let registry = PolicyRegistry::with_zoo();
    let mcm = het_sides_3x3(Profile::ArVr);
    let mix = TrafficMix::arvr(11);
    for name in registry.names() {
        let run = |parallelism: Parallelism| {
            let cfg = ServeConfig {
                parallelism,
                ..ServeConfig::default()
            };
            let scheduler = registry.build(name, &cfg).expect("registered");
            ServeSim::with_scheduler(&mcm, scheduler, cfg)
                .run(&mix, 0.05)
                .expect("the AR/VR mix fits a 3x3")
        };
        let serial = run(Parallelism::Serial);
        assert!(serial.completed > 0, "{name}: the mix must serve requests");
        assert_eq!(
            serial.completed + serial.rejected,
            serial.offered,
            "{name}: conservation of arrivals"
        );
        let fixed4 = run(Parallelism::Fixed(4));
        assert_eq!(serial, fixed4, "{name}: Serial vs Fixed(4) report");
    }
}

/// Every policy's schedule, recorded as a [`ScheduleArtifact`] and pushed
/// through JSON, replays *exactly* when the scheduler is reconstructed by
/// recorded name + recorded configuration through the same registry — the
/// guarantee the `replay` binary's exactness gate stands on, extended to
/// the whole zoo.
#[test]
fn every_zoo_artifact_replays_exactly_via_the_registry() {
    let registry = PolicyRegistry::with_zoo();
    let session = Session::new();
    let req = offline_request();
    for name in registry.names() {
        let cfg = ServeConfig::default();
        let scheduler = registry.build(name, &cfg).expect("registered");
        let result = scheduler
            .schedule(&session, &req)
            .expect("Sc1 fits a 3x3 package");
        let artifact = ScheduleArtifact::of(
            format!("{name} zoo round"),
            &*scheduler,
            req.clone(),
            result,
        );
        let back = ScheduleArtifact::from_json(&artifact.to_json()).expect("round trip");
        assert_eq!(back, artifact, "{name}: artifact JSON round trip");

        // reconstruct by recorded name, overlaying the recorded knobs —
        // exactly the replay binary's path
        let mut replay_cfg = ServeConfig::default();
        if let Some(nsplits) = back.scheduler_config.nsplits {
            replay_cfg.nsplits = nsplits;
        }
        if let Some(search) = back.scheduler_config.search.clone() {
            replay_cfg.search = search;
        }
        let rebuilt = registry
            .build(&back.scheduler, &replay_cfg)
            .expect("recorded names resolve");
        let replayed = rebuilt
            .schedule(&session, &back.request)
            .expect("recorded requests schedule");
        assert_eq!(replayed, back.result, "{name}: exact replay");
    }
}

/// The NSGA-SCAR result's candidate-cloud Pareto front is mutually
/// non-dominated and NaN-free — the front the multi-objective selection
/// reasons over is a real front.
#[test]
fn nsga_scar_front_is_mutually_nondominated() {
    let registry = PolicyRegistry::with_zoo();
    let session = Session::new();
    let scheduler = registry
        .build("NSGA-SCAR", &ServeConfig::default())
        .expect("registered");
    let result = scheduler
        .schedule(&session, &offline_request())
        .expect("Sc1 fits");
    let front = result.pareto_front();
    assert!(!front.is_empty(), "a scheduled round has a front");
    for p in &front {
        assert!(
            p.latency_s.is_finite() && p.energy_j.is_finite(),
            "front points are finite"
        );
    }
    for (i, a) in front.iter().enumerate() {
        for b in &front[i + 1..] {
            let dominates = (a.latency_s <= b.latency_s && a.energy_j < b.energy_j)
                || (a.latency_s < b.latency_s && a.energy_j <= b.energy_j);
            let dominated = (b.latency_s <= a.latency_s && b.energy_j < a.energy_j)
                || (b.latency_s < a.latency_s && b.energy_j <= a.energy_j);
            assert!(
                !dominates && !dominated,
                "front must be mutually non-dominated"
            );
        }
    }
}

/// The doc catalog and the registry cover each other exactly, in order:
/// a policy without a card (or a card without a policy) fails the zoo.
#[test]
fn catalog_and_registry_cover_each_other() {
    let registry = PolicyRegistry::with_zoo();
    let cards: Vec<&str> = catalog().iter().map(|c| c.name).collect();
    assert_eq!(registry.names(), cards, "catalog order == registry order");
    for card in catalog() {
        assert!(!card.optimizes.is_empty(), "{}: optimizes", card.name);
        assert!(!card.use_case.is_empty(), "{}: use case", card.name);
        assert!(
            !card.production_ready.is_empty(),
            "{}: production readiness",
            card.name
        );
    }
}
