//! Tiered-`CommModel` invariants: the fabric refactor of `Lat_com`
//! (DESIGN.md §13) must be a pure *lift* of the historical inline math —
//! identical numbers by default — while the new inter-MCM tier obeys
//! conservation and determinism at fleet scale.
//!
//! * **Pinned reference vectors** — `transfer` / `transfer_with_delta` on
//!   the datacenter 3×3 reproduce literal Table II floats that predate
//!   the fabric abstraction.
//! * **NopFabric neutrality** — attaching `InterconnectSpec::nop()`
//!   changes *only* the inter-MCM tier: on-package and off-chip pricing
//!   stay bit-identical to the spec-less config.
//! * **Fabric-cost conservation** — a fleet's [`FabricRollup`] equals the
//!   per-replica migration accounting summed exactly.
//! * **Re-homing determinism** — cache-affinity with a re-homing epoch
//!   stays Serial ≡ Fixed(4) and run-to-run byte-identical.
//! * **No-regression** — a single-replica fleet over a wireless fabric is
//!   still a plain [`ServeSim`] run, and a warm fleet sharing one
//!   persisted cost DB evaluates MAESTRO exactly zero times.

use scar::core::Parallelism;
use scar::mcm::templates::{het_sides_3x3, Profile};
use scar::mcm::{CommCost, InterconnectSpec, Loc};
use scar::serve::{
    DispatchKind, FleetConfig, FleetSim, ReplicaSpec, ServeConfig, ServeSim, TrafficMix,
    TrafficShape,
};

fn close(got: f64, want: f64, tol: f64, what: &str) {
    assert!((got - want).abs() < tol, "{what}: got {got}, want {want}");
}

/// Replica specs with every MCM carrying the given fabric.
fn priced_replicas(n: usize, spec: InterconnectSpec, cfg: ServeConfig) -> Vec<ReplicaSpec> {
    ReplicaSpec::heterogeneous(n, Profile::ArVr, cfg)
        .into_iter()
        .map(|mut r| {
            r.mcm = r.mcm.with_interconnect(Some(spec));
            r
        })
        .collect()
}

fn busy_cfg(parallelism: Parallelism) -> ServeConfig {
    ServeConfig {
        preemption: true,
        nsplits: 2,
        parallelism,
        ..ServeConfig::default()
    }
}

/// Literal `Lat_com` values computed by hand from §III-E and Table II,
/// *before* the fabric refactor existed. The tiered `CommModel` must
/// reproduce them to the last representable bit worth of tolerance.
#[test]
fn lat_com_reference_vectors_are_pinned() {
    let m = het_sides_3x3(Profile::Datacenter);

    // corner→corner, 4 hops, 1 MB: b/100e9 + 4·35e-9
    let c = m.transfer(Loc::Chiplet(0), Loc::Chiplet(8), 1_000_000);
    close(c.time_s, 1.014e-5, 1e-16, "NoP 4-hop time");
    close(c.energy_j, 6.528e-5, 1e-16, "NoP 4-hop energy");

    // neighbours, 1 hop, 1 MB
    let c = m.transfer(Loc::Chiplet(0), Loc::Chiplet(1), 1_000_000);
    close(c.time_s, 1.0035e-5, 1e-16, "NoP 1-hop time");
    close(c.energy_j, 1.632e-5, 1e-16, "NoP 1-hop energy");

    // DRAM → center chiplet (1 hop to its side interface), 64 kB:
    // b/64e9 + 1·35e-9 + 200e-9, energy b·(118.4 + 16.32) pJ/B
    let c = m.transfer(Loc::Offchip, Loc::Chiplet(4), 64_000);
    close(c.time_s, 1.235e-6, 1e-16, "off-chip time");
    close(c.energy_j, 8.62208e-6, 1e-16, "off-chip energy");

    // the δ congestion term is additive on time, invisible to energy
    let d = m.transfer_with_delta(Loc::Chiplet(0), Loc::Chiplet(8), 1_000_000, 3e-7);
    close(d.time_s, 1.044e-5, 1e-16, "NoP time + δ");
    close(d.energy_j, 6.528e-5, 1e-16, "δ leaves energy alone");

    // same chiplet and DRAM→DRAM stay free under every fabric
    assert_eq!(
        m.transfer(Loc::Chiplet(3), Loc::Chiplet(3), 1 << 30),
        CommCost::ZERO
    );
    assert_eq!(
        m.transfer(Loc::Offchip, Loc::Offchip, 1 << 30),
        CommCost::ZERO
    );
}

/// `InterconnectSpec::nop()` prices only the *new* tier: on-package and
/// off-chip transfers are bit-identical with and without the spec, while
/// inter-MCM transfers go from free to priced.
#[test]
fn nop_spec_changes_only_the_inter_mcm_tier() {
    let plain = het_sides_3x3(Profile::Datacenter);
    let priced =
        het_sides_3x3(Profile::Datacenter).with_interconnect(Some(InterconnectSpec::nop()));

    for bytes in [1u64, 4096, 1_000_000, 1 << 24] {
        for (src, dst) in [
            (Loc::Chiplet(0), Loc::Chiplet(8)),
            (Loc::Chiplet(2), Loc::Chiplet(3)),
            (Loc::Chiplet(7), Loc::Offchip),
            (Loc::Offchip, Loc::Chiplet(4)),
        ] {
            assert_eq!(
                plain.transfer(src, dst, bytes),
                priced.transfer(src, dst, bytes),
                "{src:?}→{dst:?} × {bytes} B must not change"
            );
            assert_eq!(
                plain.transfer_with_delta(src, dst, bytes, 1e-7),
                priced.transfer_with_delta(src, dst, bytes, 1e-7),
                "δ path must not change either"
            );
        }
        assert_eq!(plain.inter_mcm_transfer(bytes), CommCost::ZERO);
        let hop = priced.inter_mcm_transfer(bytes);
        assert!(
            hop.time_s > 0.0 && hop.energy_j > 0.0,
            "priced tier at {bytes} B"
        );
        // 2× DRAM SerDes crossings: b/64e9 + 400 ns, 236.8 pJ/B
        close(
            hop.time_s,
            bytes as f64 / 64e9 + 400e-9,
            1e-16,
            "inter-MCM time",
        );
        close(
            hop.energy_j,
            bytes as f64 * 236.8e-12,
            1e-18,
            "inter-MCM energy",
        );
    }
}

/// Conservation of fabric accounting: the fleet-level [`FabricRollup`] is
/// exactly the per-replica migration columns summed (same floats, not
/// approximately), and every priced migration shows up in both.
#[test]
fn fabric_costs_conserve_across_replicas() {
    let mix = TrafficMix::arvr(7).reshaped(TrafficShape::Burst);
    // round-robin deliberately ping-pongs streams between replicas, so the
    // fabric tier gets exercised hard
    let mut fleet = FleetSim::new(
        priced_replicas(3, InterconnectSpec::nop(), busy_cfg(Parallelism::Serial)),
        FleetConfig {
            dispatch: DispatchKind::RoundRobin,
            ..FleetConfig::default()
        },
    );
    let report = fleet.run(&mix, 0.2).unwrap();
    let fab = report.fabric.as_ref().expect("priced replicas → rollup");
    assert_eq!(fab.fabric, "nop");
    assert!(fab.migrations > 0, "round-robin must migrate streams");
    assert!(fab.bytes > 0 && fab.cost_s > 0.0 && fab.energy_j > 0.0);

    let (mut mig, mut bytes, mut cost, mut energy) = (0u64, 0u64, 0.0f64, 0.0f64);
    for r in &report.replicas {
        mig += r.migrated_in;
        bytes += r.fabric_bytes;
        cost += r.fabric_cost_s;
        energy += r.fabric_energy_j;
    }
    assert_eq!(fab.migrations, mig, "migration count conserves");
    assert_eq!(fab.bytes, bytes, "byte count conserves");
    assert_eq!(fab.cost_s, cost, "backlog seconds conserve exactly");
    assert_eq!(fab.energy_j, energy, "energy conserves exactly");

    // every migration priced a positive transfer through a replica fabric
    assert!(
        report
            .replicas
            .iter()
            .all(|r| (r.migrated_in == 0) == (r.fabric_bytes == 0)),
        "migrations and bytes appear together"
    );
}

/// Load-driven re-homing keeps the routing tier's determinism contract:
/// Serial ≡ Fixed(4) byte-for-byte, and two identical runs agree — with a
/// fabric attached and the rebalancer live.
#[test]
fn rehoming_is_deterministic_and_parallelism_invariant() {
    let kind = DispatchKind::CacheAffinity {
        max_lag_s: 0.05,
        rehome_every: 64,
    };
    for seed in [3u64, 11] {
        let mix = TrafficMix::arvr(seed).reshaped(TrafficShape::Burst);
        let run = |parallelism: Parallelism| {
            FleetSim::new(
                priced_replicas(3, InterconnectSpec::nop(), busy_cfg(parallelism)),
                FleetConfig {
                    dispatch: kind.clone(),
                    ..FleetConfig::default()
                },
            )
            .run(&mix, 0.2)
            .unwrap()
        };
        let serial = run(Parallelism::Serial);
        let fixed = run(Parallelism::Fixed(4));
        let again = run(Parallelism::Serial);
        assert_eq!(serial, fixed, "seed {seed}: Serial ≡ Fixed(4)");
        assert_eq!(
            serial.to_string(),
            fixed.to_string(),
            "seed {seed}: rendered"
        );
        assert_eq!(serial, again, "seed {seed}: run-to-run");
    }
}

/// The rebalancer actually fires on sustained imbalance: four streams
/// hashed onto three replicas leave one home twice as loaded, and the
/// epoch rebalancer moves a stream off it.
#[test]
fn rehoming_fires_under_imbalance() {
    let mix = TrafficMix::arvr(5);
    let mut fleet = FleetSim::new(
        priced_replicas(3, InterconnectSpec::nop(), busy_cfg(Parallelism::Serial)),
        FleetConfig {
            dispatch: DispatchKind::CacheAffinity {
                max_lag_s: 0.05,
                rehome_every: 32,
            },
            ..FleetConfig::default()
        },
    );
    let report = fleet.run(&mix, 0.3).unwrap();
    assert!(
        report.rehomed > 0,
        "2-streams-on-one-home imbalance must trigger re-homing: {report}"
    );
}

/// A single-replica fleet over a *wireless* fabric is still a plain
/// `ServeSim` run on the same wireless MCM — the fabric tier prices
/// migrations, and one replica never migrates.
#[test]
fn single_replica_wireless_fleet_is_a_plain_serve_sim() {
    let mcm = het_sides_3x3(Profile::ArVr).with_interconnect(Some(InterconnectSpec::wireless()));
    let mix = TrafficMix::arvr(7).reshaped(TrafficShape::Burst);
    let plain = ServeSim::new(&mcm, busy_cfg(Parallelism::Serial))
        .run(&mix, 0.2)
        .unwrap();
    for kind in DispatchKind::builtins() {
        let mut one = FleetSim::new(
            vec![ReplicaSpec {
                mcm: mcm.clone(),
                cfg: busy_cfg(Parallelism::Serial),
            }],
            FleetConfig {
                dispatch: kind.clone(),
                ..FleetConfig::default()
            },
        );
        let fleet_report = one.run(&mix, 0.2).unwrap();
        assert_eq!(
            fleet_report.replicas[0].report, plain,
            "{kind:?}: replica ≡ plain run under wireless fabric"
        );
        let fab = fleet_report.fabric.as_ref().expect("wireless rollup");
        assert_eq!(fab.fabric, "wireless");
        assert_eq!(fab.migrations, 0, "{kind:?}: one replica never migrates");
        assert_eq!(fab.bytes, 0);
        assert_eq!(fab.cost_s, 0.0);
    }
}

/// Satellite 2's acceptance gate: a fleet pointed at a persisted cost DB
/// loads it once, serves the dispatch probe and every replica from the
/// shared session, and a *warm* fleet runs at exactly zero MAESTRO
/// evaluations while reproducing the cold run's rendered report.
#[test]
fn warm_fleet_shares_one_cost_db_at_zero_evaluations() {
    let path = std::env::temp_dir().join("scar_comm_model_fleet_costs.json");
    std::fs::remove_file(&path).ok();
    let mix = TrafficMix::arvr(7).reshaped(TrafficShape::Burst);
    let run = || {
        FleetSim::new(
            ReplicaSpec::heterogeneous(3, Profile::ArVr, busy_cfg(Parallelism::Serial)),
            FleetConfig {
                dispatch: DispatchKind::LeastLoaded,
                cost_db_path: Some(path.clone()),
                ..FleetConfig::default()
            },
        )
        .run(&mix, 0.2)
        .unwrap()
    };

    let cold = run();
    assert!(cold.cost_evaluations > 0, "cold fleet pays the cost model");
    assert!(path.exists(), "fleet persists one shared snapshot");

    let warm = run();
    assert_eq!(
        warm.cost_evaluations, 0,
        "warm fleet must not evaluate MAESTRO at all"
    );
    assert_eq!(
        cold.to_string(),
        warm.to_string(),
        "cost DB warmth changes evaluations, never results"
    );
    std::fs::remove_file(&path).ok();
}
