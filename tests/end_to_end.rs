//! End-to-end integration tests: full SCAR runs across templates and
//! scenarios, baseline orderings, determinism, and schedule validity.

use scar::core::baselines::{NnBaton, Standalone};
use scar::core::{
    EvoParams, OptMetric, Scar, ScheduleError, ScheduleRequest, ScheduleResult, Scheduler,
    SearchBudget, SearchKind, Session,
};
use scar::maestro::Dataflow;
use scar::mcm::templates::{self, Profile};
use scar::mcm::McmConfig;
use scar::workloads::Scenario;

fn quick() -> SearchBudget {
    SearchBudget {
        max_root_perms: 12,
        max_paths_per_model: 6,
        max_placements_per_window: 150,
        max_candidates_per_window: 300,
        ..SearchBudget::default()
    }
}

fn request(sc: &Scenario, mcm: &McmConfig) -> ScheduleRequest {
    ScheduleRequest::new(sc.clone(), mcm.clone()).budget(quick())
}

fn run(
    scheduler: &dyn Scheduler,
    sc: &Scenario,
    mcm: &McmConfig,
) -> Result<ScheduleResult, ScheduleError> {
    scheduler.schedule(&Session::new(), &request(sc, mcm))
}

#[test]
fn every_3x3_template_schedules_scenario_1() {
    let sc = Scenario::datacenter(1);
    for mcm in [
        templates::simba_3x3(Profile::Datacenter, Dataflow::ShidiannaoLike),
        templates::simba_3x3(Profile::Datacenter, Dataflow::NvdlaLike),
        templates::het_cb_3x3(Profile::Datacenter),
        templates::het_sides_3x3(Profile::Datacenter),
        templates::simba_t_3x3(Profile::Datacenter, Dataflow::NvdlaLike),
        templates::het_t_3x3(Profile::Datacenter),
    ] {
        let r = run(&Scar::with_defaults(), &sc, &mcm)
            .unwrap_or_else(|e| panic!("{}: {e}", mcm.name()));
        r.schedule()
            .validate(&sc, mcm.num_chiplets())
            .unwrap_or_else(|e| panic!("{}: invalid schedule: {e}", mcm.name()));
        assert!(r.total().latency_s > 0.0);
        assert!(r.total().energy_j > 0.0);
    }
}

#[test]
fn every_arvr_scenario_schedules_on_het_sides() {
    for n in 6..=10 {
        let sc = Scenario::arvr(n);
        let mcm = templates::het_sides_3x3(Profile::ArVr);
        let r = run(&Scar::with_defaults(), &sc, &mcm).unwrap_or_else(|e| panic!("Sc{n}: {e}"));
        r.schedule().validate(&sc, 9).unwrap();
    }
}

#[test]
fn six_by_six_evolutionary_schedules_scenario_4() {
    let sc = Scenario::datacenter(4);
    let mcm = templates::het_cross_6x6(Profile::Datacenter);
    let scar = Scar::builder()
        .nsplits(2)
        .search(SearchKind::Evolutionary(EvoParams::default()))
        .build();
    let r = run(&scar, &sc, &mcm).expect("6x6 feasible");
    r.schedule().validate(&sc, 36).unwrap();
}

#[test]
fn scar_beats_nn_baton_on_multi_model_workloads() {
    // the headline motivation (Figure 2): a multi-model-aware scheduler
    // beats sequential single-model scheduling
    let sc = Scenario::datacenter(1);
    let mcm = templates::het_sides_3x3(Profile::Datacenter);
    // one shared session for both schedulers, as a serving system would use
    let session = Session::new();
    let scar = Scar::with_defaults()
        .schedule(&session, &request(&sc, &mcm))
        .unwrap();
    let baton = NnBaton::new()
        .schedule(&session, &request(&sc, &mcm))
        .unwrap();
    assert!(
        scar.total().edp() < baton.total().edp(),
        "SCAR {} !< NN-baton {}",
        scar.total().edp(),
        baton.total().edp()
    );
}

#[test]
fn nvdla_standalone_wins_lm_scenarios() {
    // Table IV shape: Sc1 (LM-only) strongly favors the NVDLA dataflow
    let sc = Scenario::datacenter(1);
    let shi = run(
        &Standalone::new(),
        &sc,
        &templates::simba_3x3(Profile::Datacenter, Dataflow::ShidiannaoLike),
    )
    .unwrap();
    let nvd = run(
        &Standalone::new(),
        &sc,
        &templates::simba_3x3(Profile::Datacenter, Dataflow::NvdlaLike),
    )
    .unwrap();
    assert!(nvd.total().edp() * 4.0 < shi.total().edp());
}

#[test]
fn shi_based_schedules_win_the_social_arvr_scenario() {
    // Table V shape: Sc9 (EyeCod + Hand S/P + Sp2Dense) favors Shi/het
    let sc = Scenario::arvr(9);
    let shi = run(
        &Standalone::new(),
        &sc,
        &templates::simba_3x3(Profile::ArVr, Dataflow::ShidiannaoLike),
    )
    .unwrap();
    let nvd = run(
        &Standalone::new(),
        &sc,
        &templates::simba_3x3(Profile::ArVr, Dataflow::NvdlaLike),
    )
    .unwrap();
    assert!(shi.total().edp() < nvd.total().edp());
}

#[test]
fn results_are_deterministic_across_runs() {
    let sc = Scenario::arvr(10);
    let mcm = templates::het_cb_3x3(Profile::ArVr);
    let scar = Scar::with_defaults();
    let a = run(&scar, &sc, &mcm).unwrap();
    let b = run(&scar, &sc, &mcm).unwrap();
    assert_eq!(a.schedule(), b.schedule());
    assert_eq!(a.total(), b.total());
}

#[test]
fn different_seeds_explore_different_candidates() {
    let sc = Scenario::datacenter(2);
    let mcm = templates::het_sides_3x3(Profile::Datacenter);
    let run = |seed: u64| {
        Scar::with_defaults()
            .schedule(
                &Session::new(),
                &request(&sc, &mcm).budget(SearchBudget { seed, ..quick() }),
            )
            .unwrap()
            .candidates()
            .len()
    };
    // both succeed; candidate clouds need not be identical, but are nonempty
    assert!(run(1) > 0);
    assert!(run(2) > 0);
}

#[test]
fn custom_metric_is_honored() {
    // a latency-only custom metric must match the built-in latency search
    let sc = Scenario::datacenter(1);
    let mcm = templates::simba_3x3(Profile::Datacenter, Dataflow::NvdlaLike);
    let custom = OptMetric::Custom(std::sync::Arc::new(|t| t.latency_s));
    let session = Session::new();
    let a = Scar::with_defaults()
        .schedule(&session, &request(&sc, &mcm).metric(custom))
        .unwrap();
    let b = Scar::with_defaults()
        .schedule(&session, &request(&sc, &mcm).metric(OptMetric::Latency))
        .unwrap();
    assert!((a.total().latency_s - b.total().latency_s).abs() < 1e-12);
}

#[test]
fn infeasible_scenarios_error_cleanly() {
    let sc = Scenario::datacenter(5); // 6 models
    let mcm = templates::het_2x2(Profile::Datacenter); // 4 chiplets
    let err = run(&Scar::builder().nsplits(0).build(), &sc, &mcm).unwrap_err();
    assert!(err.to_string().contains("chiplets"));
}

#[test]
fn constrained_edp_search_respects_the_latency_bound() {
    // §VI extension: an EDP search lower-bounded by a latency constraint
    let sc = Scenario::datacenter(3);
    let mcm = templates::het_sides_3x3(Profile::Datacenter);
    // single window: the bound applies exactly end-to-end
    let run = |metric: OptMetric| {
        Scar::builder()
            .nsplits(0)
            .build()
            .schedule(&Session::new(), &request(&sc, &mcm).metric(metric))
            .unwrap()
            .total()
    };
    let fastest = run(OptMetric::Latency);
    let edp_opt = run(OptMetric::Edp);
    if fastest.latency_s >= edp_opt.latency_s * 0.999 {
        // EDP optimum already latency-optimal: any bound ≥ it is trivially
        // satisfiable; nothing further to exercise on this seed
        return;
    }
    // an achievable bound strictly tighter than the EDP optimum's latency
    let bound = (fastest.latency_s + edp_opt.latency_s) / 2.0;
    let constrained = run(OptMetric::ConstrainedEdp {
        max_latency_s: bound,
    });
    assert!(
        constrained.latency_s <= bound * 1.0001,
        "bound {bound} violated: {}",
        constrained.latency_s
    );
    // the constraint can only cost EDP relative to the unconstrained search
    assert!(constrained.edp() >= edp_opt.edp() * 0.999);
}
