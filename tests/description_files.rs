//! Integration tests for the Figure 4 description-file interface: JSON
//! round-trips of workloads and MCM hardware, and scheduling from parsed
//! descriptions.

use scar::core::{OptMetric, Scar, ScheduleRequest, Scheduler, SearchBudget, Session};
use scar::maestro::{ChipletConfig, Dataflow};
use scar::mcm::templates::{het_sides_3x3, Profile};
use scar::mcm::{parse as mcm_parse, McmConfig, NopTopology};
use scar::workloads::{parse as wl_parse, Scenario};

fn quick() -> SearchBudget {
    SearchBudget {
        max_root_perms: 8,
        max_paths_per_model: 4,
        max_placements_per_window: 60,
        max_candidates_per_window: 120,
        ..SearchBudget::default()
    }
}

#[test]
fn all_table_iii_scenarios_roundtrip_through_json() {
    for n in 1..=10 {
        let sc = Scenario::by_id(n);
        let json = wl_parse::scenario_to_json(&sc).unwrap();
        let back = wl_parse::scenario_from_json(&json).unwrap();
        assert_eq!(back, sc, "scenario {n} JSON roundtrip");
    }
}

#[test]
fn mcm_roundtrip_preserves_scheduling_results() {
    let sc = Scenario::datacenter(1);
    let mcm = het_sides_3x3(Profile::Datacenter);
    let json = mcm_parse::mcm_to_json(&mcm).unwrap();
    let parsed = mcm_parse::mcm_from_json(&json).unwrap();

    let session = Session::new();
    let scar = Scar::with_defaults();
    let request = |mcm: &McmConfig| ScheduleRequest::new(sc.clone(), mcm.clone()).budget(quick());
    let a = scar.schedule(&session, &request(&mcm)).unwrap();
    let b = scar.schedule(&session, &request(&parsed)).unwrap();
    assert_eq!(a.schedule(), b.schedule());
    assert_eq!(a.total(), b.total());
}

#[test]
fn scheduling_from_files_on_disk() {
    let dir = std::env::temp_dir().join("scar_integration_files");
    std::fs::create_dir_all(&dir).unwrap();

    let sc_path = dir.join("scenario.json");
    let mcm_path = dir.join("mcm.json");
    wl_parse::save_scenario(&Scenario::arvr(10), &sc_path).unwrap();
    mcm_parse::save_mcm(&het_sides_3x3(Profile::ArVr), &mcm_path).unwrap();

    let sc = wl_parse::load_scenario(&sc_path).unwrap();
    let mcm = mcm_parse::load_mcm(&mcm_path).unwrap();
    let r = Scar::with_defaults()
        .schedule(
            &Session::new(),
            &ScheduleRequest::new(sc, mcm)
                .metric(OptMetric::Edp)
                .budget(quick()),
        )
        .unwrap();
    assert!(r.total().edp() > 0.0);
}

#[test]
fn hand_written_mcm_description_parses() {
    // a minimal hand-authored description: 2 chiplets on a 1x2 mesh
    let chiplets: Vec<ChipletConfig> = vec![
        ChipletConfig::arvr(Dataflow::NvdlaLike),
        ChipletConfig::arvr(Dataflow::ShidiannaoLike),
    ];
    let mcm = McmConfig::new("pair", chiplets, NopTopology::mesh(1, 2), vec![0, 1]);
    let json = mcm_parse::mcm_to_json(&mcm).unwrap();
    // sanity: the JSON mentions both dataflows and the Table II defaults
    assert!(json.contains("NvdlaLike"));
    assert!(json.contains("ShidiannaoLike"));
    let back = mcm_parse::mcm_from_json(&json).unwrap();
    assert_eq!(back.num_chiplets(), 2);
    assert_eq!(back.topology().hops(0, 1), 1);
}

#[test]
fn malformed_descriptions_produce_useful_errors() {
    let e = wl_parse::scenario_from_json("{\"broken\": true}").unwrap_err();
    assert!(e.to_string().contains("malformed"));
    let e = mcm_parse::mcm_from_json("not json at all").unwrap_err();
    assert!(e.to_string().contains("malformed"));
}
