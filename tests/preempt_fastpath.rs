//! The splice-aware preemption fast path (`Scar::preempt`), locked down
//! three ways on seeded sweeps:
//!
//! * **Parallelism-independence** — the trimmed warm-start search draws
//!   all randomness from the request seed and merges candidate batches in
//!   id order, so `Serial` and `Fixed(4)` evaluation answer a preemption
//!   bit-identically, exactly like the full search.
//! * **No-regression under the request metric** — on these sweeps the
//!   warm-started neighborhood search scores no worse than the full
//!   cold-start search it replaces: the surviving placement is pinned
//!   into the explored set, so the fast path starts from the incumbent
//!   instead of rediscovering it.
//! * **Fallback fidelity** — when the cut instance yields no warm hints
//!   (empty or structurally mismatched), `preempt` must degrade to the
//!   trait-default full search, byte-for-byte: same schedule, same
//!   totals, same candidate cloud.

use scar::core::{
    OptMetric, Parallelism, Scar, ScheduleInstance, ScheduleRequest, Scheduler, SearchBudget,
    Session,
};
use scar::mcm::templates::{het_sides_3x3, Profile};
use scar::mcm::McmConfig;
use scar::workloads::Scenario;

/// Serving-shaped budget: tight caps (the serve loop's regime, where the
/// fast path matters) but enough head-room that every sweep scenario is
/// feasible.
fn budget(seed: u64, parallelism: Parallelism) -> SearchBudget {
    SearchBudget {
        max_root_perms: 8,
        max_paths_per_model: 4,
        max_placements_per_window: 60,
        max_candidates_per_window: 120,
        seed,
        parallelism,
        ..SearchBudget::default()
    }
}

fn request(sc: &Scenario, mcm: &McmConfig, seed: u64, par: Parallelism) -> ScheduleRequest {
    ScheduleRequest::new(sc.clone(), mcm.clone())
        .metric(OptMetric::Edp)
        .budget(budget(seed, par))
}

/// A `(request, in_flight)` pair that exercises the warm-start path: the
/// instance is a fresh schedule of the same scenario, so every request
/// model mines a hint (its own prior placement, resume at layer 0 — the
/// degenerate "cut before anything ran" splice).
fn warm_pair(
    scar: &Scar,
    session: &Session,
    sc: &Scenario,
    mcm: &McmConfig,
    seed: u64,
) -> (ScheduleRequest, ScheduleInstance) {
    let req = request(sc, mcm, seed, Parallelism::Serial);
    let in_flight = scar
        .schedule(session, &req)
        .expect("seeding schedule must be feasible")
        .schedule()
        .clone();
    (req, in_flight)
}

/// (a) `Serial` ≡ `Fixed(4)`: the preemption answer is a pure function of
/// `(request, in_flight)`, independent of evaluation parallelism.
#[test]
fn preempt_serial_matches_fixed4_bit_identically() {
    let mcm = het_sides_3x3(Profile::ArVr);
    let scar = Scar::builder().nsplits(2).build();
    let session = Session::new();
    for n in [6usize, 7, 8] {
        let sc = Scenario::arvr(n);
        for seed in [1u64, 42] {
            let (req, in_flight) = warm_pair(&scar, &session, &sc, &mcm, seed);
            let serial = scar.preempt(&session, &req, &in_flight).unwrap();
            let fixed = scar
                .preempt(
                    &session,
                    &req.clone().budget(budget(seed, Parallelism::Fixed(4))),
                    &in_flight,
                )
                .unwrap();
            assert_eq!(
                serial, fixed,
                "Sc{n} seed {seed}: preempt must be parallelism-independent"
            );
        }
    }
}

/// (b) The fast path never scores worse than the full-search fallback it
/// replaces, under the request's own metric.
#[test]
fn preempt_fastpath_no_worse_than_full_search() {
    let mcm = het_sides_3x3(Profile::ArVr);
    let scar = Scar::builder().nsplits(2).build();
    let session = Session::new();
    for n in [6usize, 7, 8, 9, 10] {
        let sc = Scenario::arvr(n);
        for seed in [1u64, 7, 42] {
            let (req, in_flight) = warm_pair(&scar, &session, &sc, &mcm, seed);
            let fast = scar.preempt(&session, &req, &in_flight).unwrap();
            let full = scar.schedule(&session, &req).unwrap();
            let (fast_score, full_score) = (
                req.metric.score(&fast.total()),
                req.metric.score(&full.total()),
            );
            assert!(
                fast_score <= full_score,
                "Sc{n} seed {seed}: fast path scored {fast_score} worse than full search {full_score}"
            );
        }
    }
}

/// (c) Hint-less cuts fall back to the trait default, byte-for-byte: an
/// empty instance and a structurally mismatched one (windows whose layer
/// totals can't be any remainder of the request's models) must both
/// reproduce `schedule` exactly — schedule, totals, windows, and the full
/// candidate cloud.
#[test]
fn preempt_without_hints_matches_schedule_byte_for_byte() {
    let mcm = het_sides_3x3(Profile::ArVr);
    let scar = Scar::builder().nsplits(2).build();
    let session = Session::new();
    for n in [6usize, 8] {
        let sc = Scenario::arvr(n);
        for seed in [1u64, 42] {
            let req = request(&sc, &mcm, seed, Parallelism::Serial);
            let full = scar.schedule(&session, &req).unwrap();

            // empty cut: nothing in flight survived
            let empty = ScheduleInstance { windows: vec![] };
            let fallback = scar.preempt(&session, &req, &empty).unwrap();
            assert_eq!(
                fallback, full,
                "Sc{n} seed {seed}: empty cut must fall back to the full search"
            );

            // mismatched cut: a malformed instance (inconsistent per-window
            // model counts) mines zero hints by construction
            let mut malformed = full.schedule().clone();
            if malformed.windows.len() > 1 {
                malformed.windows[0].window.layers.pop();
                malformed.windows[0].placement.pop();
                let fallback = scar.preempt(&session, &req, &malformed).unwrap();
                assert_eq!(
                    fallback, full,
                    "Sc{n} seed {seed}: malformed cut must fall back to the full search"
                );
            }
        }
    }
}
