//! Integration tests for the `Scheduler` trait redesign: every scheduler
//! driven through `Box<dyn Scheduler>` must be bit-identical to the
//! pre-redesign entry points, requests/results must round-trip through
//! JSON, and sharing a `Session` must never change results.

use scar::core::baselines::{self, NnBaton, Standalone};
use scar::core::{
    OptMetric, Parallelism, Scar, ScheduleArtifact, ScheduleRequest, ScheduleResult, Scheduler,
    SearchBudget, Session,
};
use scar::maestro::Dataflow;
use scar::mcm::templates::{het_sides_3x3, simba_3x3, Profile};
use scar::mcm::McmConfig;
use scar::workloads::Scenario;

fn quick() -> SearchBudget {
    SearchBudget {
        max_root_perms: 12,
        max_paths_per_model: 6,
        max_placements_per_window: 150,
        max_candidates_per_window: 300,
        parallelism: Parallelism::Serial,
        ..SearchBudget::default()
    }
}

fn request(sc: &Scenario, mcm: &McmConfig, metric: OptMetric) -> ScheduleRequest {
    ScheduleRequest::new(sc.clone(), mcm.clone())
        .metric(metric)
        .budget(quick())
}

/// Every scheduler family behind one `Box<dyn Scheduler>`, checked
/// bit-identical (totals, windows, chosen schedule, candidate cloud)
/// against the pre-redesign entry points: `Scar::schedule_with_db` for
/// SCAR, the `baselines::*` free functions for the baselines.
#[test]
#[allow(deprecated)]
fn boxed_schedulers_match_pre_redesign_entry_points() {
    let sc = Scenario::datacenter(1);
    let mcm = het_sides_3x3(Profile::Datacenter);
    let session = Session::new();

    for metric in [OptMetric::Edp, OptMetric::Latency] {
        let req = request(&sc, &mcm, metric.clone());

        let schedulers: Vec<(Box<dyn Scheduler>, ScheduleResult)> = vec![
            (
                Box::new(Scar::with_defaults()),
                Scar::builder()
                    .metric(metric.clone())
                    .budget(quick())
                    .build()
                    .schedule_with_db(&sc, &mcm, session.database())
                    .unwrap(),
            ),
            (
                Box::new(Standalone::new()),
                baselines::standalone(&sc, &mcm, metric.clone(), Parallelism::Serial).unwrap(),
            ),
            (
                Box::new(NnBaton::new()),
                baselines::nn_baton(&sc, &mcm, metric.clone(), Parallelism::Serial).unwrap(),
            ),
        ];
        for (scheduler, legacy) in &schedulers {
            let via_trait = scheduler.schedule(&session, &req).unwrap();
            let label = format!("{} / {}", scheduler.name(), metric.label());
            assert_eq!(via_trait.total(), legacy.total(), "{label}: totals");
            assert_eq!(via_trait.windows(), legacy.windows(), "{label}: windows");
            assert_eq!(
                via_trait.schedule(),
                legacy.schedule(),
                "{label}: chosen schedule"
            );
            assert_eq!(
                via_trait.candidates(),
                legacy.candidates(),
                "{label}: candidate cloud"
            );
        }
    }
}

/// One shared session across *different* schedulers and scenarios vs a
/// fresh session per call: results must be bit-identical (per-layer costs
/// are pure in (chiplet, layer, batch)), and the shared database must
/// actually accumulate.
#[test]
fn shared_session_is_equivalent_to_fresh_sessions() {
    let mcm = het_sides_3x3(Profile::Datacenter);
    let shared = Session::new();
    let schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(Scar::with_defaults()),
        Box::new(Standalone::new()),
        Box::new(NnBaton::new()),
    ];
    let mut sizes = Vec::new();
    for scn in [1usize, 2] {
        let sc = Scenario::datacenter(scn);
        let req = request(&sc, &mcm, OptMetric::Edp);
        for s in &schedulers {
            let warm = s.schedule(&shared, &req).unwrap();
            let cold = s.schedule(&Session::new(), &req).unwrap();
            assert_eq!(warm, cold, "Sc{scn} {}", s.name());
            sizes.push(shared.cached_costs());
        }
    }
    assert!(
        sizes.last().unwrap() > sizes.first().unwrap(),
        "the shared database must grow across scenarios: {sizes:?}"
    );
}

/// `ScheduleRequest` round-trips through JSON, and the deserialized
/// request schedules identically (the MCM's rebuilt topology caches
/// included).
#[test]
fn schedule_request_roundtrips_through_json() {
    let sc = Scenario::datacenter(1);
    let mcm = simba_3x3(Profile::Datacenter, Dataflow::NvdlaLike);
    let req = request(&sc, &mcm, OptMetric::ConstrainedEdp { max_latency_s: 2.0 });

    let json = serde_json::to_string(&req).unwrap();
    let back: ScheduleRequest = serde_json::from_str(&json).unwrap();
    assert_eq!(back, req);

    let session = Session::new();
    let scar = Scar::with_defaults();
    let a = scar.schedule(&session, &req).unwrap();
    let b = scar.schedule(&session, &back).unwrap();
    assert_eq!(a, b, "a deserialized request must schedule identically");
}

/// `ScheduleResult` (and the full `ScheduleArtifact` bundle) serialized to
/// JSON deserializes back equal — the acceptance criterion of the
/// request/response redesign.
#[test]
fn schedule_result_roundtrips_through_json() {
    let sc = Scenario::datacenter(1);
    let mcm = het_sides_3x3(Profile::Datacenter);
    let session = Session::new();
    let req = request(&sc, &mcm, OptMetric::Edp);

    for scheduler in [
        &Scar::with_defaults() as &dyn Scheduler,
        &Standalone,
        &NnBaton { start: 0 },
    ] {
        let result = scheduler.schedule(&session, &req).unwrap();
        let json = serde_json::to_string(&result).unwrap();
        let back: ScheduleResult = serde_json::from_str(&json).unwrap();
        assert_eq!(back, result, "{}", scheduler.name());
        // report accessors survive the round trip
        assert_eq!(back.window_latencies(), result.window_latencies());
        assert_eq!(back.pareto_front(), result.pareto_front());
        assert_eq!(back.model_completion_s(0), result.model_completion_s(0));

        let artifact =
            ScheduleArtifact::new("integration", scheduler.name(), req.clone(), result.clone());
        let back = ScheduleArtifact::from_json(&artifact.to_json()).unwrap();
        assert_eq!(back, artifact, "{} artifact", scheduler.name());
    }
}

/// Scheduler *configuration* round-trips through artifacts: `of` records
/// the answering scheduler's structural knobs, they survive JSON, and the
/// registry rebuilds a scheduler that fingerprints identically to the
/// recorded one — the guarantee replay's exactness gate stands on.
#[test]
fn scheduler_config_roundtrips_through_artifacts() {
    use scar::core::{SchedulerConfig, SearchKind};
    use scar::serve::{fingerprint, PolicyRegistry, ServeConfig};

    let sc = Scenario::datacenter(1);
    let mcm = het_sides_3x3(Profile::Datacenter);
    let session = Session::new();
    let req = request(&sc, &mcm, OptMetric::Edp);

    // a non-default SCAR: nsplits 2 (the registry default is 1)
    let scar = Scar::builder().nsplits(2).budget(quick()).build();
    assert_eq!(
        scar.config(),
        SchedulerConfig {
            nsplits: Some(2),
            search: Some(SearchKind::BruteForce),
        }
    );
    let result = scar.schedule(&session, &req).unwrap();
    let artifact = ScheduleArtifact::of("roundtrip", &scar, req.clone(), result);
    assert_eq!(artifact.scheduler, "SCAR");
    assert_eq!(artifact.scheduler_config, scar.config());

    // JSON round trip preserves the configuration
    let back = ScheduleArtifact::from_json(&artifact.to_json()).unwrap();
    assert_eq!(back, artifact);
    assert_eq!(back.scheduler_config.nsplits, Some(2));

    // the registry reconstructs a scheduler with the recorded knobs that
    // fingerprints identically to the original (cache-interchangeable)
    let cfg = ServeConfig {
        nsplits: back.scheduler_config.nsplits.unwrap(),
        search: back.scheduler_config.search.clone().unwrap(),
        ..ServeConfig::default()
    };
    let rebuilt = PolicyRegistry::with_builtins()
        .build(&back.scheduler, &cfg)
        .unwrap();
    assert_eq!(
        fingerprint(&req, rebuilt.as_ref()),
        fingerprint(&req, &scar),
        "reconstructed configuration must fingerprint like the recorded one"
    );

    // baselines record the empty configuration, and pre-config artifacts
    // (no scheduler_config field in the JSON) still load
    let standalone = Standalone::new();
    assert!(standalone.config().is_empty());
    let legacy_json = {
        // drop the scheduler_config field from the value tree, as if the
        // artifact had been written before the field existed
        use serde::{Serialize, Value};
        let v = artifact.to_value();
        let fields = v.as_object().expect("artifacts serialize as objects");
        let stripped: Vec<(String, Value)> = fields
            .iter()
            .filter(|(k, _)| k != "scheduler_config")
            .cloned()
            .collect();
        serde::write_pretty(&Value::Object(stripped))
    };
    let legacy = ScheduleArtifact::from_json(&legacy_json)
        .expect("artifacts recorded before configurations existed must load");
    assert!(legacy.scheduler_config.is_empty());
}

/// The serving loop's incremental path is exposed through the trait:
/// `reschedule` accepts a prior instance for a batch-resized request and
/// declines a structurally different one; the baselines always decline.
#[test]
fn reschedule_contract_across_schedulers() {
    let mcm = het_sides_3x3(Profile::Datacenter);
    let sc = Scenario::datacenter(1);
    let session = Session::new();
    let req = request(&sc, &mcm, OptMetric::Edp);

    let scar = Scar::with_defaults();
    assert!(scar.supports_reschedule());
    let first = scar.schedule(&session, &req).unwrap();

    // same models, doubled batches: the old placement still validates
    let resized = Scenario::new(
        "resized",
        sc.use_case(),
        sc.models()
            .iter()
            .map(|m| scar::workloads::ScenarioModel {
                model: m.model.clone(),
                batch: m.batch * 2,
            })
            .collect(),
    );
    let resized_req = request(&resized, &mcm, OptMetric::Edp);
    let seeded = scar
        .reschedule(&session, &resized_req, first.schedule())
        .expect("batch-only change reuses the placement");
    assert_eq!(seeded.schedule(), first.schedule());
    assert!(seeded.total().latency_s > 0.0);

    // a different scenario shape must be declined
    let other = Scenario::datacenter(4);
    let other_req = request(&other, &mcm, OptMetric::Edp);
    assert!(scar
        .reschedule(&session, &other_req, first.schedule())
        .is_none());

    // search-free baselines never reschedule
    for s in [&Standalone as &dyn Scheduler, &NnBaton { start: 0 }] {
        assert!(!s.supports_reschedule(), "{}", s.name());
        assert!(s
            .reschedule(&session, &resized_req, first.schedule())
            .is_none());
    }
}
