//! Integration tests for the serving simulator: end-to-end determinism,
//! cache correctness against fresh scheduling, generated-scenario serving,
//! and cross-use-case behavior on real MCM templates.

use scar::core::{OptMetric, Scar, ScheduleRequest, Scheduler, Session};
use scar::mcm::templates::{het_sides_3x3, Profile};
use scar::serve::{fingerprint, ServeConfig, ServePolicy, ServeSim, TrafficMix};
use scar::workloads::scenario::generate;
use scar::workloads::UseCase;

/// Fixed seed → two fresh simulators produce byte-identical reports
/// (percentile metrics, energy, makespan, and cache counters included).
#[test]
fn serving_is_deterministic_end_to_end() {
    let mcm = het_sides_3x3(Profile::ArVr);
    let run = || {
        let mut sim = ServeSim::with_defaults(&mcm);
        sim.run(&TrafficMix::arvr(41), 0.4).expect("mix fits")
    };
    let a = run();
    let b = run();
    assert_eq!(a, b);
    assert!(a.cache.hits > 0, "recurring frames must hit: {:?}", a.cache);
    // and the report is internally consistent
    assert_eq!(a.completed, TrafficMix::arvr(41).arrivals(0.4).len());
    assert_eq!(
        a.per_stream.iter().map(|s| s.completed).sum::<usize>(),
        a.completed
    );
    assert_eq!(
        a.per_stream
            .iter()
            .map(|s| s.deadline_misses)
            .sum::<usize>(),
        a.deadline_misses
    );
}

/// The datacenter mix is deterministic too (Poisson arrivals are seeded).
#[test]
fn poisson_serving_is_deterministic() {
    let mcm = het_sides_3x3(Profile::Datacenter);
    let run = || {
        let mut sim = ServeSim::with_defaults(&mcm);
        sim.run(&TrafficMix::datacenter(7), 0.5).expect("mix fits")
    };
    assert_eq!(run(), run());
}

/// A cached schedule must be indistinguishable from a fresh
/// `Scar::schedule` of the same live scenario: identical totals, window
/// structure, and per-model completion offsets.
#[test]
fn cached_schedule_matches_fresh_schedule() {
    let mcm = het_sides_3x3(Profile::Datacenter);
    let cfg = ServeConfig::default();
    let sim = ServeSim::new(&mcm, cfg.clone());

    // live scenarios the serving loop would form
    for seed in [1u64, 2, 3] {
        let live = generate(seed, UseCase::Datacenter, 2);
        let via_sim = sim.schedule_fresh(&live).expect("schedulable");
        let fresh = Scar::builder()
            .nsplits(cfg.nsplits)
            .search(cfg.search.clone())
            .build()
            .schedule(
                &Session::new(),
                &ScheduleRequest::new(live.clone(), mcm.clone())
                    .metric(cfg.metric.clone())
                    .budget(cfg.budget.clone()),
            )
            .expect("schedulable");
        assert_eq!(via_sim.total(), fresh.total(), "seed {seed}");
        assert_eq!(via_sim.schedule(), fresh.schedule(), "seed {seed}");
        assert_eq!(via_sim.window_latencies(), fresh.window_latencies());
        for m in 0..live.models().len() {
            assert_eq!(via_sim.model_completion_s(m), fresh.model_completion_s(m));
        }
    }
}

/// Serving with the cache on and off yields identical metrics — the cache
/// changes cost, never outcomes.
///
/// Incremental rescheduling is disabled here to isolate the cache: the
/// incremental path is a deliberate quality/cost trade whose decisions are
/// keyed to the *previous* round, so combined with a cache (which
/// remembers rounds arbitrarily far back) the two features together do
/// not promise cache-on/off equality — only determinism (the same config
/// and mix always reproduce the same report).
#[test]
fn cache_does_not_change_serving_outcomes() {
    let mcm = het_sides_3x3(Profile::ArVr);
    let run = |use_cache: bool| {
        let mut sim = ServeSim::new(
            &mcm,
            ServeConfig {
                use_cache,
                incremental: false,
                ..ServeConfig::default()
            },
        );
        sim.run(&TrafficMix::arvr(5), 0.3).expect("mix fits")
    };
    let cached = run(true);
    let uncached = run(false);
    assert_eq!(cached.latency, uncached.latency);
    assert_eq!(cached.makespan_s, uncached.makespan_s);
    assert_eq!(cached.energy_j, uncached.energy_j);
    assert_eq!(cached.deadline_misses, uncached.deadline_misses);
    assert!(cached.cache.hits > 0);
    assert_eq!(uncached.cache.hits, 0);
    assert_eq!(uncached.cache.misses, 0);
}

/// Identical live scenarios fingerprint identically across construction
/// sites; different batches do not.
#[test]
fn fingerprints_agree_across_equal_scenarios() {
    let mcm = het_sides_3x3(Profile::Datacenter);
    let scar = Scar::builder().nsplits(1).build();
    let key = |sc: &scar::workloads::Scenario| {
        fingerprint(
            &ScheduleRequest::new(sc.clone(), mcm.clone()).metric(OptMetric::Edp),
            &scar,
        )
    };
    let a = generate(10, UseCase::Datacenter, 3);
    let b = generate(10, UseCase::Datacenter, 3);
    assert_eq!(key(&a), key(&b));
    let c = generate(11, UseCase::Datacenter, 3);
    assert_ne!(
        key(&a),
        key(&c),
        "different batches/models must not collide"
    );
}

/// Generated scenarios can be served, not just scheduled: wire a generated
/// scenario's models into streams and run the loop.
#[test]
fn generated_scenarios_serve() {
    use scar::serve::{ArrivalProcess, RequestStream};
    let mcm = het_sides_3x3(Profile::Datacenter);
    let sc = generate(99, UseCase::Datacenter, 3);
    let streams = sc
        .models()
        .iter()
        .map(|sm| RequestStream {
            model: sm.model.clone(),
            samples_per_request: sm.batch,
            arrivals: ArrivalProcess::Poisson { rate_hz: 20.0 },
            deadline_s: None,
        })
        .collect();
    let mix = TrafficMix::new("generated", UseCase::Datacenter, streams, 99);
    let mut sim = ServeSim::with_defaults(&mcm);
    let report = sim.run(&mix, 0.2).expect("three tenants fit");
    assert_eq!(report.completed, mix.arrivals(0.2).len());
    assert!(report.completed > 0);
    assert!(report.energy_j > 0.0);
}

/// All three serving policies drain the same traffic; SCAR never loses to
/// Standalone on deadline misses for the default AR/VR mix.
#[test]
fn policies_complete_identical_traffic() {
    let mcm = het_sides_3x3(Profile::ArVr);
    let mix = TrafficMix::arvr(6);
    let offered = mix.arrivals(0.2).len();
    let mut miss_rates = Vec::new();
    for policy in [
        ServePolicy::Scar,
        ServePolicy::Standalone,
        ServePolicy::NnBaton,
    ] {
        let mut sim = ServeSim::with_policy(&mcm, policy.clone(), ServeConfig::default());
        let r = sim.run(&mix, 0.2).expect("policy serves the mix");
        assert_eq!(r.completed, offered, "{policy:?} must drain the queue");
        miss_rates.push((policy, r.deadline_miss_rate()));
    }
    let scar_rate = miss_rates[0].1;
    let standalone_rate = miss_rates[1].1;
    assert!(
        scar_rate <= standalone_rate + 1e-12,
        "SCAR miss rate {scar_rate} vs Standalone {standalone_rate}"
    );
}
